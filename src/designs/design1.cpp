#include "designs/designs.hpp"

namespace opiso {

// design1: datapath block whose first-stage candidates' activation
// signal is the primary input "act" (paper Sec. 6: "the activation
// signal of the isolation candidates in the first combinational stage
// of the design could be controlled from a primary input").
//
//   Stage 1 (two independent combinational blocks):
//     mul1 = x0 * x1 -> reg_p (EN = act)        AS(mul1) = act
//     add1 = x2 + x3 -> reg_q (EN = act)        AS(add1) = act
//   Stage 2 (one combinational block, four candidates):
//     add2  = reg_p + reg_q
//     sub2  = reg_p - reg_q
//     mux_a = sel ? sub2 : add2                 (steering)
//     add3  = mux_a + reg_q                     (chained: secondary savings)
//     mux_b = g2 ? add3 : reg_p
//     reg_out(mux_b, EN = g1) -> out0           AS(add3) = g2·g1
//     mul2  = reg_q * reg_q
//     mux_c = sel ? reg_p' : mul2               AS(mul2) = !sel·g2
//     reg_out2(mux_c, EN = g2) -> out1
Netlist make_design1(unsigned width) {
  Netlist nl("design1");
  const unsigned w2 = 2 * width;
  const NetId x0 = nl.add_input("x0", width);
  const NetId x1 = nl.add_input("x1", width);
  const NetId x2 = nl.add_input("x2", width);
  const NetId x3 = nl.add_input("x3", width);
  const NetId act = nl.add_input("act", 1);
  const NetId sel = nl.add_input("sel", 1);
  const NetId g1 = nl.add_input("g1", 1);
  const NetId g2 = nl.add_input("g2", 1);

  // Stage 1 — candidates whose AS is directly a primary input.
  const NetId mul1 = nl.add_binop(CellKind::Mul, "mul1", x0, x1);  // width 2w
  const NetId add1 = nl.add_binop(CellKind::Add, "add1", x2, x3);  // width w
  const NetId reg_p = nl.add_reg("reg_p", mul1, act);
  const NetId reg_q = nl.add_reg("reg_q", add1, act);

  // Stage 2 — internally steered candidates.
  const NetId add2 = nl.add_binop(CellKind::Add, "add2", reg_p, reg_q);
  const NetId sub2 = nl.add_binop(CellKind::Sub, "sub2", reg_p, reg_q);
  const NetId mux_a = nl.add_mux2("mux_a", sel, add2, sub2);
  const NetId add3 = nl.add_binop(CellKind::Add, "add3", mux_a, reg_q);
  const NetId mux_b = nl.add_mux2("mux_b", g2, reg_p, add3);
  const NetId reg_out = nl.add_reg("reg_out", mux_b, g1);

  const NetId mul2 = nl.add_binop(CellKind::Mul, "mul2", reg_q, reg_q);
  OPISO_REQUIRE(nl.net(mul2).width == w2 && nl.net(reg_p).width == w2,
                "design1: width bookkeeping broken");
  const NetId mux_c = nl.add_mux2("mux_c", sel, mul2, reg_p);
  const NetId reg_out2 = nl.add_reg("reg_out2", mux_c, g2);

  nl.add_output("out0", reg_out);
  nl.add_output("out1", reg_out2);
  nl.validate();
  return nl;
}

}  // namespace opiso
