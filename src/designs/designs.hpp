#pragma once
// Benchmark designs.
//
// fig1:    the paper's running example (Fig. 1) — two adders behind a
//          mux/register steering network; the derived activation
//          functions must come out as AS_a0 = G0 and
//          AS_a1 = S2·G1 + S1·!S0·G0 (Sec. 3).
//
// design1: stand-in for the paper's first industrial datapath block.
//          Its defining property (Sec. 6): the activation signal of the
//          first combinational stage's isolation candidates is a primary
//          input ("act"), so testbenches can sweep the activation-signal
//          statistics directly.
//
// design2: stand-in for the second block: a small FSM-sequenced
//          multi-lane MAC datapath whose arithmetic modules are used
//          only in a few states — the activation statistics are
//          internal and cannot be controlled from the environment.
//
// parametric_datapath: synthetic generator (lanes × stages) for the
//          O(|V|+|E|) scaling benchmark and for property tests.

#include "netlist/netlist.hpp"

namespace opiso {

/// Names of the interesting nets in fig1 (for tests and examples).
struct Fig1Nets {
  NetId a1_out;  ///< output of adder a1 (isolation target of the paper)
  NetId a0_out;  ///< output of adder a0
  CellId a1;
  CellId a0;
};

[[nodiscard]] Netlist make_fig1(unsigned width = 8);
[[nodiscard]] Fig1Nets fig1_nets(const Netlist& nl);

[[nodiscard]] Netlist make_design1(unsigned width = 8);
[[nodiscard]] Netlist make_design2(unsigned width = 8, unsigned lanes = 2);

/// Shape of the random fuzzing designs (property-based tests).
struct RandomDesignConfig {
  unsigned levels = 6;
  unsigned cells_per_level = 5;
  unsigned max_width = 8;
  bool allow_latches = false;  ///< latch-free keeps formal checking applicable
};

/// Random layered datapath: arithmetic + muxes + comparators feeding
/// selects + enabled registers, acyclic by construction, every leaf
/// exported. Deterministic per seed.
[[nodiscard]] Netlist make_random_datapath(std::uint64_t seed,
                                           const RandomDesignConfig& config = {});

struct ParametricConfig {
  unsigned lanes = 4;       ///< independent datapath lanes
  unsigned stages = 3;      ///< pipeline stages per lane
  unsigned width = 8;       ///< data width
  bool cross_links = true;  ///< adders chained inside a stage (secondary savings)
};
[[nodiscard]] Netlist make_parametric_datapath(const ParametricConfig& config);

}  // namespace opiso
