#include "designs/designs.hpp"
#include "support/rng.hpp"

namespace opiso {

// Random layered datapath generator for property-based testing: each
// layer consumes nets from earlier layers (acyclic by construction),
// mixing arithmetic modules, steering muxes, control gates, comparators
// (data-dependent control!), enabled registers and occasional latches.
// Every leaf net that ends up unread is exported as a primary output so
// nothing is trivially dead.
Netlist make_random_datapath(std::uint64_t seed, const RandomDesignConfig& cfg) {
  OPISO_REQUIRE(cfg.levels >= 1 && cfg.cells_per_level >= 1, "random design: bad shape");
  OPISO_REQUIRE(cfg.max_width >= 2 && cfg.max_width <= 12, "random design: bad width");
  Rng rng(seed);
  Netlist nl("rand_" + std::to_string(seed));

  std::vector<NetId> data;   // multi-bit nets
  std::vector<NetId> ctrl;   // 1-bit nets
  int name_counter = 0;
  auto name = [&](const char* base) {
    return std::string(base) + std::to_string(name_counter++);
  };

  // Primary inputs: a few data words and control bits.
  for (unsigned i = 0; i < 3; ++i) {
    data.push_back(
        nl.add_input(name("in"), 2 + static_cast<unsigned>(rng.next_range(0, cfg.max_width - 2))));
  }
  for (unsigned i = 0; i < 3; ++i) ctrl.push_back(nl.add_input(name("c"), 1));
  ctrl.push_back(nl.add_const(name("k"), 1, 1));

  auto pick_data = [&]() { return data[rng.next_range(0, data.size() - 1)]; };
  auto pick_ctrl = [&]() { return ctrl[rng.next_range(0, ctrl.size() - 1)]; };
  // Two operands of identical width (required by some shapes): widen by
  // picking any two and letting max-width inference handle it.

  for (unsigned level = 0; level < cfg.levels; ++level) {
    for (unsigned c = 0; c < cfg.cells_per_level; ++c) {
      switch (rng.next_range(0, 9)) {
        case 0:
        case 1: {  // arithmetic module
          const CellKind kind =
              std::array{CellKind::Add, CellKind::Sub, CellKind::Mul}[rng.next_range(0, 2)];
          NetId a = pick_data();
          NetId b = pick_data();
          if (kind == CellKind::Mul &&
              nl.net(a).width + nl.net(b).width > cfg.max_width + 4) {
            break;  // keep multiplier growth bounded
          }
          data.push_back(nl.add_binop(kind, name("ar"), a, b));
          break;
        }
        case 2:
        case 3: {  // steering mux
          NetId a = pick_data();
          NetId b = pick_data();
          data.push_back(nl.add_mux2(name("mx"), pick_ctrl(), a, b));
          break;
        }
        case 4: {  // comparator: data-dependent control
          ctrl.push_back(nl.add_binop(rng.next_bool(0.5) ? CellKind::Lt : CellKind::Eq,
                                      name("cmp"), pick_data(), pick_data()));
          break;
        }
        case 5: {  // control gate
          const CellKind kind = std::array{CellKind::And, CellKind::Or, CellKind::Xor,
                                           CellKind::Nand}[rng.next_range(0, 3)];
          ctrl.push_back(nl.add_binop(kind, name("cg"), pick_ctrl(), pick_ctrl()));
          break;
        }
        case 6: {  // inverter on control
          ctrl.push_back(nl.add_unop(CellKind::Not, name("cn"), pick_ctrl()));
          break;
        }
        case 7:
        case 8: {  // enabled register (sequential boundary)
          data.push_back(nl.add_reg(name("r"), pick_data(), pick_ctrl()));
          break;
        }
        default: {  // occasional latch or shift
          if (cfg.allow_latches && rng.next_bool(0.3)) {
            data.push_back(nl.add_latch(name("lt"), pick_data(), pick_ctrl()));
          } else {
            data.push_back(nl.add_shift(rng.next_bool(0.5) ? CellKind::Shl : CellKind::Shr,
                                        name("sh"), pick_data(),
                                        static_cast<unsigned>(rng.next_range(0, 2))));
          }
          break;
        }
      }
    }
  }

  // Export every unread net so all logic is observable somewhere.
  int po = 0;
  for (NetId net : nl.net_ids()) {
    if (nl.net(net).fanouts.empty()) {
      nl.add_output("out" + std::to_string(po++), net);
    }
  }
  nl.validate();
  return nl;
}

}  // namespace opiso
