#include "designs/designs.hpp"

namespace opiso {

// design2: FSM-sequenced MAC datapath — the control-dominated case of
// Sec. 1 where "arithmetic operations are used only in a few states".
// A start-gated 3-bit state counter decodes eight phases; each lane's
// multiplier and accumulator adder contribute only in phases 1–2 and
// the output subtractor only in phase 6, so every arithmetic module
// idles for multi-cycle stretches (the regime where combinational
// isolation styles pay off, Sec. 5.2). The activation statistics are
// produced inside the design and cannot be controlled from the
// testbench (paper Sec. 6).
Netlist make_design2(unsigned width, unsigned lanes) {
  OPISO_REQUIRE(lanes >= 1, "design2 needs at least one lane");
  Netlist nl("design2");
  const NetId start = nl.add_input("start", 1);
  const NetId one = nl.add_const("const1", 1, 1);

  // --- 3-bit state counter st2:st1:st0 cycling 0..7 while start is
  // high: st0' = st0^start, st1' = st1^(st0·start), st2' = st2^(st1·st0·start).
  // The feedback loops are built by creating the registers on
  // placeholder D nets and patching them once the next-state logic
  // exists (registers legally break the cycles).
  const NetId dummy0 = nl.add_const("dummy0", 0, 1);
  const NetId st0 = nl.add_reg("st0", dummy0, one);
  const NetId st1 = nl.add_reg("st1", dummy0, one);
  const NetId st2 = nl.add_reg("st2", dummy0, one);
  const NetId adv0 = nl.add_binop(CellKind::And, "adv0", st0, start);
  const NetId adv1 = nl.add_binop(CellKind::And, "adv1", st1, adv0);
  const NetId nx0 = nl.add_binop(CellKind::Xor, "nx0", st0, start);
  const NetId nx1 = nl.add_binop(CellKind::Xor, "nx1", st1, adv0);
  const NetId nx2 = nl.add_binop(CellKind::Xor, "nx2", st2, adv1);
  nl.reconnect_input(nl.net(st0).driver, 0, nx0);
  nl.reconnect_input(nl.net(st1).driver, 0, nx1);
  nl.reconnect_input(nl.net(st2).driver, 0, nx2);

  // Phase decode (1-bit control nets the activation functions will tap):
  //   ph1 (001) and ph2 (010) accumulate; ph_wr = phase 6 (110) writes
  //   the corrected result out.
  const NetId n_st0 = nl.add_unop(CellKind::Not, "n_st0", st0);
  const NetId n_st1 = nl.add_unop(CellKind::Not, "n_st1", st1);
  const NetId n_st2 = nl.add_unop(CellKind::Not, "n_st2", st2);
  const NetId lo01 = nl.add_binop(CellKind::And, "lo01", n_st1, st0);   // x01
  const NetId lo10 = nl.add_binop(CellKind::And, "lo10", st1, n_st0);   // x10
  const NetId ph1 = nl.add_binop(CellKind::And, "ph1", n_st2, lo01);    // 001
  const NetId ph2 = nl.add_binop(CellKind::And, "ph2", n_st2, lo10);    // 010
  const NetId ph_wr = nl.add_binop(CellKind::And, "ph_wr", st2, lo10);  // 110
  const NetId en_acc = nl.add_binop(CellKind::Or, "en_acc", ph1, ph2);

  for (unsigned lane = 0; lane < lanes; ++lane) {
    const std::string L = "l" + std::to_string(lane) + "_";
    const NetId a_in = nl.add_input(L + "a", width);
    const NetId b_in = nl.add_input(L + "b", width);

    // MAC: acc' = acc + a*b, accumulating during phases 1-2 only. The
    // acc register is created with a placeholder D and patched after
    // the adder exists (the register breaks the combinational cycle).
    const NetId mul = nl.add_binop(CellKind::Mul, L + "mul", a_in, b_in);  // 2w
    const NetId acc_dummy = nl.add_const(L + "acc_d0", 0, 2 * width);
    const NetId acc = nl.add_reg(L + "acc", acc_dummy, en_acc);
    const NetId sum = nl.add_binop(CellKind::Add, L + "sum", acc, mul);  // 2w
    nl.reconnect_input(nl.net(acc).driver, 0, sum);

    // Output stage: in the write-back phase a corrected value (acc - b)
    // is captured, otherwise the raw accumulator passes through.
    const NetId sub = nl.add_binop(CellKind::Sub, L + "sub", acc, b_in);  // 2w
    const NetId omux = nl.add_mux2(L + "omux", ph_wr, acc, sub);
    const NetId oreg = nl.add_reg(L + "oreg", omux, ph_wr);
    nl.add_output(L + "out", oreg);
  }
  nl.validate();
  return nl;
}

}  // namespace opiso
