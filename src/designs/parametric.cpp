#include "designs/designs.hpp"

namespace opiso {

// Parametric pipeline: `lanes` independent data lanes, each `stages`
// deep. Every stage of a lane computes mul/add/sub variants behind a
// mux steered by stage-local select inputs and captures into an enabled
// register, so every stage contributes isolation candidates with
// non-trivial activation functions. With cross_links, the adder chain
// inside a stage creates candidate→candidate edges (secondary savings).
Netlist make_parametric_datapath(const ParametricConfig& cfg) {
  OPISO_REQUIRE(cfg.lanes >= 1 && cfg.stages >= 1, "parametric: lanes/stages must be >= 1");
  OPISO_REQUIRE(cfg.width >= 2 && cfg.width <= 16, "parametric: width must be in [2,16]");
  Netlist nl("parametric_" + std::to_string(cfg.lanes) + "x" + std::to_string(cfg.stages));

  for (unsigned lane = 0; lane < cfg.lanes; ++lane) {
    const std::string L = "l" + std::to_string(lane) + "_";
    NetId data_a = nl.add_input(L + "a", cfg.width);
    NetId data_b = nl.add_input(L + "b", cfg.width);

    for (unsigned stage = 0; stage < cfg.stages; ++stage) {
      const std::string S = L + "s" + std::to_string(stage) + "_";
      const NetId sel = nl.add_input(S + "sel", 1);
      const NetId en = nl.add_input(S + "en", 1);

      // Equal-width operands keep every stage's interface uniform.
      const NetId sum = nl.add_binop(CellKind::Add, S + "sum", data_a, data_b);
      const NetId dif = nl.add_binop(CellKind::Sub, S + "dif", data_a, data_b);
      NetId steered = nl.add_mux2(S + "mux", sel, sum, dif);
      if (cfg.cross_links) {
        // Chained adder: observability of `sum`/`dif` now also flows
        // through this candidate.
        steered = nl.add_binop(CellKind::Add, S + "acc", steered, data_b);
      }
      const NetId reg_a = nl.add_reg(S + "ra", steered, en);
      const NetId reg_b = nl.add_reg(S + "rb", data_a, en);
      data_a = reg_a;
      data_b = reg_b;
    }
    nl.add_output(L + "out", data_a);
  }
  nl.validate();
  return nl;
}

}  // namespace opiso
