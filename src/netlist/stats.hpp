#pragma once
// Netlist statistics and DOT export — debugging/report utilities.

#include <array>
#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace opiso {

struct NetlistStats {
  std::array<std::size_t, kNumCellKinds> cells_by_kind{};
  std::size_t num_cells = 0;
  std::size_t num_nets = 0;
  std::size_t num_arith_modules = 0;   ///< isolation-candidate population
  std::size_t num_registers = 0;
  std::size_t num_isolation_cells = 0;
  std::size_t total_data_bits = 0;     ///< sum of net widths
};

[[nodiscard]] NetlistStats compute_stats(const Netlist& nl);

/// Human-readable one-per-line summary.
[[nodiscard]] std::string stats_to_string(const NetlistStats& s);

/// GraphViz dot rendering; arithmetic modules are boxed, registers are
/// double-boxed, isolation cells are shaded.
void write_dot(std::ostream& os, const Netlist& nl);
[[nodiscard]] std::string netlist_to_dot(const Netlist& nl);

}  // namespace opiso
