#include "netlist/traversal.hpp"

#include <algorithm>
#include <queue>

namespace opiso {

namespace {

/// True if the cell's output is available without evaluating its inputs
/// this cycle (sequential state, stimulus, or constants).
bool is_source(CellKind kind) {
  return kind == CellKind::Reg || kind == CellKind::PrimaryInput || kind == CellKind::Constant;
}

/// Combinational cells for block-partitioning purposes. Latches are
/// level-sensitive state but live inside combinational regions: the
/// paper treats sequential *boundaries* as edge-triggered registers.
bool is_comb(CellKind kind) {
  return !is_source(kind) && kind != CellKind::PrimaryOutput;
}

}  // namespace

std::vector<CellId> topological_order(const Netlist& nl) {
  const std::size_t n = nl.num_cells();
  std::vector<int> pending(n, 0);
  std::queue<CellId> ready;
  // All sources are seeded before any combinational cell, regardless of
  // cell id. A zero-dependency combinational cell whose inputs include
  // a register Q must still evaluate after that register: the simulator
  // refreshes Q from the captured state when it visits the Reg cell, so
  // an id-interleaved seeding would hand later-created registers' old
  // values to earlier-created readers.
  for (std::uint32_t i = 0; i < n; ++i) {
    const Cell& c = nl.cell(CellId{i});
    if (is_source(c.kind)) {
      pending[i] = 0;
      ready.push(CellId{i});
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const Cell& c = nl.cell(CellId{i});
    if (is_source(c.kind)) continue;
    int deps = 0;
    for (NetId in : c.ins) {
      const Cell& drv = nl.cell(nl.net(in).driver);
      if (!is_source(drv.kind)) ++deps;
    }
    pending[i] = deps;
    if (deps == 0) ready.push(CellId{i});
  }
  std::vector<CellId> order;
  order.reserve(n);
  while (!ready.empty()) {
    CellId id = ready.front();
    ready.pop();
    order.push_back(id);
    const Cell& c = nl.cell(id);
    if (is_source(c.kind) || !c.out.valid()) continue;
    for (const Pin& pin : nl.net(c.out).fanouts) {
      const Cell& sink = nl.cell(pin.cell);
      if (is_source(sink.kind)) continue;
      if (--pending[pin.cell.value()] == 0) ready.push(pin.cell);
    }
  }
  // Registers/PIs that consume nets were pushed as sources already; a
  // shortfall means a combinational cycle. Name the actual cycle (via
  // the SCC decomposition) rather than an arbitrary pending cell — the
  // blocked cell Kahn leaves behind is often merely downstream of it.
  if (order.size() != n) {
    const std::vector<std::vector<CellId>> sccs = combinational_sccs(nl);
    if (!sccs.empty()) {
      throw NetlistError("combinational cycle through " +
                         describe_comb_cycle(nl, sccs.front()));
    }
    throw NetlistError("combinational cycle detected");
  }
  return order;
}

std::vector<std::vector<CellId>> combinational_sccs(const Netlist& nl) {
  const std::size_t n = nl.num_cells();
  constexpr std::uint32_t kUnvisited = 0xFFFFFFFFu;
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<bool> self_loop(n, false);
  std::vector<std::uint32_t> stack;
  std::vector<std::vector<CellId>> sccs;
  std::uint32_t next_index = 0;

  // Explicit DFS frames (cell + next fanout edge) instead of recursion:
  // a cyclic input must produce a diagnostic, not a stack overflow, and
  // cycles imply arbitrarily deep walks.
  struct Frame {
    std::uint32_t cell;
    std::size_t edge;
  };
  std::vector<Frame> frames;

  auto comb_edges = [&](std::uint32_t c) -> const std::vector<Pin>* {
    const Cell& cell = nl.cell(CellId{c});
    if (!is_comb(cell.kind) || !cell.out.valid()) return nullptr;
    return &nl.net(cell.out).fanouts;
  };

  for (std::uint32_t root = 0; root < n; ++root) {
    if (!is_comb(nl.cell(CellId{root}).kind) || index[root] != kUnvisited) continue;
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    frames.push_back(Frame{root, 0});
    while (!frames.empty()) {
      const std::uint32_t cur = frames.back().cell;
      const std::vector<Pin>* edges = comb_edges(cur);
      bool descended = false;
      while (edges != nullptr && frames.back().edge < edges->size()) {
        const Pin pin = (*edges)[frames.back().edge++];
        const std::uint32_t succ = pin.cell.value();
        if (!is_comb(nl.cell(pin.cell).kind)) continue;
        if (succ == cur) self_loop[cur] = true;
        if (index[succ] == kUnvisited) {
          index[succ] = low[succ] = next_index++;
          stack.push_back(succ);
          on_stack[succ] = true;
          frames.push_back(Frame{succ, 0});
          descended = true;
          break;
        }
        if (on_stack[succ]) low[cur] = std::min(low[cur], index[succ]);
      }
      if (descended) continue;
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().cell] = std::min(low[frames.back().cell], low[cur]);
      }
      if (low[cur] == index[cur]) {
        std::vector<CellId> comp;
        while (true) {
          const std::uint32_t m = stack.back();
          stack.pop_back();
          on_stack[m] = false;
          comp.emplace_back(m);
          if (m == cur) break;
        }
        if (comp.size() > 1 || self_loop[cur]) {
          std::sort(comp.begin(), comp.end(),
                    [](CellId a, CellId b) { return a.value() < b.value(); });
          sccs.push_back(std::move(comp));
        }
      }
    }
  }
  std::sort(sccs.begin(), sccs.end(),
            [](const std::vector<CellId>& a, const std::vector<CellId>& b) {
              return a.front().value() < b.front().value();
            });
  return sccs;
}

bool has_combinational_cycle(const Netlist& nl) { return !combinational_sccs(nl).empty(); }

std::string describe_comb_cycle(const Netlist& nl, const std::vector<CellId>& scc) {
  constexpr std::size_t kMaxNamed = 4;
  std::string out;
  const std::size_t shown = std::min(scc.size(), kMaxNamed);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i > 0) out += " -> ";
    out += "'" + nl.cell(scc[i]).name + "'";
  }
  if (scc.size() > kMaxNamed) {
    out += " ... (+" + std::to_string(scc.size() - kMaxNamed) + " more)";
  } else if (scc.size() > 1) {
    out += " -> '" + nl.cell(scc.front()).name + "'";
  } else {
    out += " -> '" + nl.cell(scc.front()).name + "' (self-loop)";
  }
  return out;
}

std::vector<CombBlock> combinational_blocks(const Netlist& nl) {
  const std::size_t n = nl.num_cells();
  // Union-find over combinational cells joined through nets whose driver
  // and consumer are both combinational.
  std::vector<std::uint32_t> parent(n);
  for (std::uint32_t i = 0; i < n; ++i) parent[i] = i;
  auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](std::uint32_t a, std::uint32_t b) { parent[find(a)] = find(b); };

  for (NetId nid : nl.net_ids()) {
    const Net& net = nl.net(nid);
    const Cell& drv = nl.cell(net.driver);
    if (!is_comb(drv.kind)) continue;
    for (const Pin& pin : net.fanouts) {
      if (is_comb(nl.cell(pin.cell).kind)) unite(net.driver.value(), pin.cell.value());
    }
  }

  // Gather components in topological order so each block's cell list is
  // already an evaluation order.
  std::vector<CellId> topo = topological_order(nl);
  std::vector<int> root_to_block(n, -1);
  std::vector<CombBlock> blocks;
  for (CellId id : topo) {
    if (!is_comb(nl.cell(id).kind)) continue;
    const std::uint32_t root = find(id.value());
    if (root_to_block[root] < 0) {
      root_to_block[root] = static_cast<int>(blocks.size());
      blocks.push_back(CombBlock{static_cast<int>(blocks.size()), {}});
    }
    blocks[static_cast<size_t>(root_to_block[root])].cells.push_back(id);
  }
  return blocks;
}

std::vector<int> block_index_of_cells(const Netlist& nl, const std::vector<CombBlock>& blocks) {
  std::vector<int> index(nl.num_cells(), -1);
  for (const CombBlock& b : blocks) {
    for (CellId id : b.cells) index[id.value()] = b.index;
  }
  return index;
}

namespace {

template <typename NextFn>
std::vector<CellId> cone(const Netlist& nl, CellId root, NextFn&& next) {
  std::vector<bool> seen(nl.num_cells(), false);
  std::vector<CellId> result;
  std::vector<CellId> stack{root};
  seen[root.value()] = true;
  while (!stack.empty()) {
    CellId id = stack.back();
    stack.pop_back();
    result.push_back(id);
    next(id, [&](CellId nxt) {
      if (!seen[nxt.value()]) {
        seen[nxt.value()] = true;
        stack.push_back(nxt);
      }
    });
  }
  return result;
}

}  // namespace

std::vector<CellId> combinational_fanout_cone(const Netlist& nl, CellId root) {
  return cone(nl, root, [&](CellId id, auto&& push) {
    const Cell& c = nl.cell(id);
    if (!c.out.valid()) return;
    for (const Pin& pin : nl.net(c.out).fanouts) {
      if (is_comb(nl.cell(pin.cell).kind)) push(pin.cell);
    }
  });
}

std::vector<CellId> combinational_fanin_cone(const Netlist& nl, CellId root) {
  return cone(nl, root, [&](CellId id, auto&& push) {
    for (NetId in : nl.cell(id).ins) {
      CellId drv = nl.net(in).driver;
      if (is_comb(nl.cell(drv).kind)) push(drv);
    }
  });
}

bool net_in_combinational_fanout(const Netlist& nl, CellId cell, NetId net) {
  CellId target = nl.net(net).driver;
  if (target == cell) return true;
  std::vector<CellId> fan = combinational_fanout_cone(nl, cell);
  return std::find(fan.begin(), fan.end(), target) != fan.end();
}

std::vector<CellId> changed_cells(const Netlist& base, const Netlist& cur) {
  if (cur.num_cells() < base.num_cells() || cur.num_nets() < base.num_nets()) {
    throw NetlistError("changed_cells: current netlist is not an append-only "
                       "evolution of the baseline (cells or nets were removed)");
  }
  for (std::uint32_t n = 0; n < base.num_nets(); ++n) {
    if (cur.net(NetId{n}).width != base.net(NetId{n}).width) {
      throw NetlistError("changed_cells: width of net '" + cur.net(NetId{n}).name +
                         "' changed between baseline and current netlist");
    }
  }
  std::vector<CellId> changed;
  for (std::uint32_t i = 0; i < cur.num_cells(); ++i) {
    const CellId id{i};
    if (i >= base.num_cells()) {
      changed.push_back(id);
      continue;
    }
    const Cell& a = base.cell(id);
    const Cell& b = cur.cell(id);
    if (a.kind != b.kind || a.param != b.param || a.width != b.width || a.out != b.out ||
        a.ins != b.ins) {
      changed.push_back(id);
    }
  }
  return changed;
}

std::vector<CellId> dirty_cone(const Netlist& nl, const std::vector<CellId>& seeds) {
  std::vector<bool> seen(nl.num_cells(), false);
  std::vector<CellId> stack;
  for (CellId s : seeds) {
    if (!seen[s.value()]) {
      seen[s.value()] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    const CellId id = stack.back();
    stack.pop_back();
    const Cell& c = nl.cell(id);
    if (!c.out.valid()) continue;
    // Cross sequential boundaries: a dirty register D/EN pin dirties the
    // register's output from the next cycle on, so its readers replay too.
    for (const Pin& pin : nl.net(c.out).fanouts) {
      if (!seen[pin.cell.value()]) {
        seen[pin.cell.value()] = true;
        stack.push_back(pin.cell);
      }
    }
  }
  std::vector<CellId> cone;
  for (std::uint32_t i = 0; i < nl.num_cells(); ++i) {
    if (seen[i]) cone.push_back(CellId{i});
  }
  return cone;
}

}  // namespace opiso
