#include "netlist/cell.hpp"

#include <array>
#include <string>

namespace opiso {

namespace {
constexpr std::array<std::string_view, kNumCellKinds> kNames = {
    "input", "output", "const", "add", "sub",  "mul",  "eq",   "lt",
    "shl",   "shr",    "not",   "buf", "and",  "or",   "xor",  "nand",
    "nor",   "xnor",   "mux2",  "reg", "latch", "iso_and", "iso_or", "iso_latch",
};
}  // namespace

std::string_view cell_kind_name(CellKind kind) {
  return kNames[static_cast<int>(kind)];
}

CellKind cell_kind_from_name(std::string_view name) {
  for (int i = 0; i < kNumCellKinds; ++i) {
    if (kNames[i] == name) return static_cast<CellKind>(i);
  }
  throw ParseError("unknown cell kind: '" + std::string(name) + "'");
}

int cell_kind_num_inputs(CellKind kind) {
  switch (kind) {
    case CellKind::PrimaryInput:
    case CellKind::Constant:
      return 0;
    case CellKind::PrimaryOutput:
    case CellKind::Not:
    case CellKind::Buf:
    case CellKind::Shl:
    case CellKind::Shr:
      return 1;
    case CellKind::Add:
    case CellKind::Sub:
    case CellKind::Mul:
    case CellKind::Eq:
    case CellKind::Lt:
    case CellKind::And:
    case CellKind::Or:
    case CellKind::Xor:
    case CellKind::Nand:
    case CellKind::Nor:
    case CellKind::Xnor:
    case CellKind::Reg:
    case CellKind::Latch:
    case CellKind::IsoAnd:
    case CellKind::IsoOr:
    case CellKind::IsoLatch:
      return 2;
    case CellKind::Mux2:
      return 3;
  }
  throw Error("cell_kind_num_inputs: invalid kind");
}

std::string_view cell_port_name(CellKind kind, int port) {
  switch (kind) {
    case CellKind::Mux2: {
      constexpr std::array<std::string_view, 3> names = {"S", "A", "B"};
      OPISO_REQUIRE(port >= 0 && port < 3, "Mux2 port out of range");
      return names[static_cast<size_t>(port)];
    }
    case CellKind::Reg:
    case CellKind::Latch: {
      constexpr std::array<std::string_view, 2> names = {"D", "EN"};
      OPISO_REQUIRE(port >= 0 && port < 2, "Reg/Latch port out of range");
      return names[static_cast<size_t>(port)];
    }
    case CellKind::IsoAnd:
    case CellKind::IsoOr:
    case CellKind::IsoLatch: {
      constexpr std::array<std::string_view, 2> names = {"D", "AS"};
      OPISO_REQUIRE(port >= 0 && port < 2, "isolation cell port out of range");
      return names[static_cast<size_t>(port)];
    }
    default: {
      constexpr std::array<std::string_view, 3> names = {"A", "B", "C"};
      OPISO_REQUIRE(port >= 0 && port < 3, "port out of range");
      return names[static_cast<size_t>(port)];
    }
  }
}

}  // namespace opiso
