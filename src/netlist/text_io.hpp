#pragma once
// Textual netlist format (.rtn) — exact round-trip of the data model.
//
//   # comment
//   design <name>
//   net <name> <width>
//   cell <name> <kind> [param=<uint>] -> <outnet|-> : <in1> <in2> ...
//
// Nets are declared before the cells that use them; cells appear in
// insertion order, which add_cell re-validates on load (single driver,
// pin counts, width rules).

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace opiso {

void write_netlist(std::ostream& os, const Netlist& nl);
[[nodiscard]] std::string netlist_to_string(const Netlist& nl);

[[nodiscard]] Netlist read_netlist(std::istream& is);
[[nodiscard]] Netlist netlist_from_string(const std::string& text);

void save_netlist(const std::string& path, const Netlist& nl);
[[nodiscard]] Netlist load_netlist(const std::string& path);

}  // namespace opiso
