#pragma once
// Textual netlist format (.rtn) — exact round-trip of the data model.
//
//   # comment
//   design <name>
//   net <name> <width>
//   cell <name> <kind> [param=<uint>] -> <outnet|-> : <in1> <in2> ...
//
// Nets are declared before the cells that use them; cells appear in
// insertion order, which add_cell re-validates on load (single driver,
// pin counts, width rules).

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"
#include "netlist/source_map.hpp"

namespace opiso {

void write_netlist(std::ostream& os, const Netlist& nl);
[[nodiscard]] std::string netlist_to_string(const Netlist& nl);

/// Load-time knobs. `validate = false` skips the final validate() call so
/// structurally suspect designs (combinational cycles, dangling nets) can
/// be loaded for *analysis* — the lint driver wants to report on such
/// designs, not be rejected by the loader. Per-statement checks
/// (add_net/add_cell width and pin rules) always run.
struct NetlistReadOptions {
  bool validate = true;
};

[[nodiscard]] Netlist read_netlist(std::istream& is);
[[nodiscard]] Netlist read_netlist(std::istream& is, const NetlistReadOptions& options,
                                   SourceMap* source_map = nullptr);
[[nodiscard]] Netlist netlist_from_string(const std::string& text);

void save_netlist(const std::string& path, const Netlist& nl);
[[nodiscard]] Netlist load_netlist(const std::string& path);
[[nodiscard]] Netlist load_netlist(const std::string& path, const NetlistReadOptions& options,
                                   SourceMap* source_map = nullptr);

}  // namespace opiso
