#pragma once
// Word-level RTL netlist.
//
// The netlist is an arena of cells and nets addressed by strongly typed
// ids. Every net has exactly one driver (a cell output or a primary
// input cell) and an explicit fanout list of (cell, port) pins, because
// both the activation-function derivation (backward traversal, Sec. 3)
// and the multiplexing-function derivation (Sec. 4.1) walk the structure
// in both directions.
//
// Construction goes through the typed add_* helpers which enforce the
// per-kind pin-count and width rules at insertion time; validate()
// re-checks global invariants (single driver, acyclicity, width
// consistency) and is called by the simulator and the isolation engine
// before they trust a netlist.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/cell.hpp"
#include "support/strong_id.hpp"

namespace opiso {

struct CellTag;
struct NetTag;
using CellId = StrongId<CellTag>;
using NetId = StrongId<NetTag>;

/// A (consumer cell, input port index) pair: one fanout of a net.
struct Pin {
  CellId cell;
  int port = 0;
  friend bool operator==(const Pin&, const Pin&) = default;
};

struct Cell {
  CellKind kind = CellKind::Constant;
  std::string name;
  unsigned width = 1;           ///< width of the output (1 for comparators)
  std::uint64_t param = 0;      ///< Constant value or shift amount
  std::vector<NetId> ins;       ///< input nets, per-kind port order
  NetId out;                    ///< invalid for PrimaryOutput
};

struct Net {
  std::string name;
  unsigned width = 1;
  CellId driver;                ///< cell whose output drives this net
  std::vector<Pin> fanouts;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  // -- access -------------------------------------------------------------
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  [[nodiscard]] std::size_t num_cells() const { return cells_.size(); }
  [[nodiscard]] std::size_t num_nets() const { return nets_.size(); }

  [[nodiscard]] const Cell& cell(CellId id) const;
  [[nodiscard]] const Net& net(NetId id) const;

  [[nodiscard]] std::vector<CellId> cell_ids() const;
  [[nodiscard]] std::vector<NetId> net_ids() const;

  /// Primary inputs / outputs in insertion order.
  [[nodiscard]] const std::vector<CellId>& primary_inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<CellId>& primary_outputs() const { return outputs_; }

  /// Find a net/cell by name; returns invalid id if absent.
  [[nodiscard]] NetId find_net(std::string_view name) const;
  [[nodiscard]] CellId find_cell(std::string_view name) const;

  // -- construction ---------------------------------------------------------
  /// Create a fresh net. Names must be unique and non-empty.
  NetId add_net(std::string name, unsigned width);

  /// Generic cell insertion; checks pin counts and width rules for `kind`
  /// and wires up fanout lists. Returns the new cell id.
  CellId add_cell(CellKind kind, std::string name, const std::vector<NetId>& ins, NetId out,
                  std::uint64_t param = 0);

  // Convenience builders. Each creates the output net `<name>` itself
  // (except add_output) and returns the output net id.
  NetId add_input(const std::string& name, unsigned width);
  CellId add_output(const std::string& name, NetId src);
  NetId add_const(const std::string& name, std::uint64_t value, unsigned width);
  NetId add_unop(CellKind kind, const std::string& name, NetId a);
  NetId add_binop(CellKind kind, const std::string& name, NetId a, NetId b);
  NetId add_shift(CellKind kind, const std::string& name, NetId a, unsigned amount);
  NetId add_mux2(const std::string& name, NetId sel, NetId a, NetId b);
  NetId add_reg(const std::string& name, NetId d, NetId en);
  NetId add_latch(const std::string& name, NetId d, NetId en);
  NetId add_iso(CellKind kind, const std::string& name, NetId d, NetId as);

  // -- surgery (used by the isolation transform) ----------------------------
  /// Reconnect input `port` of `consumer` from its current net to
  /// `new_net`, maintaining both fanout lists.
  void reconnect_input(CellId consumer, int port, NetId new_net);

  /// Generate a name not yet used by any net ("<base>", "<base>_1", ...).
  [[nodiscard]] std::string fresh_net_name(const std::string& base) const;
  [[nodiscard]] std::string fresh_cell_name(const std::string& base) const;

  /// Rename a net/cell (new name must be unique). Used by frontends to
  /// promote generated temporaries to user-visible signal names.
  void rename_net(NetId id, const std::string& new_name);
  void rename_cell(CellId id, const std::string& new_name);

  // -- invariants -----------------------------------------------------------
  /// Throws NetlistError on the first violated invariant.
  void validate() const;

  /// Output width the kind would produce from these input nets.
  [[nodiscard]] unsigned infer_width(CellKind kind, const std::vector<NetId>& ins,
                                     std::uint64_t param) const;

 private:
  void check_new_cell(CellKind kind, const std::string& name, const std::vector<NetId>& ins,
                      NetId out) const;

  std::string name_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<CellId> inputs_;
  std::vector<CellId> outputs_;
  std::unordered_map<std::string, NetId> net_by_name_;
  std::unordered_map<std::string, CellId> cell_by_name_;
};

}  // namespace opiso
