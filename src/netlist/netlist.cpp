#include "netlist/netlist.hpp"

#include <algorithm>

#include "netlist/traversal.hpp"

namespace opiso {

const Cell& Netlist::cell(CellId id) const {
  OPISO_REQUIRE(id.valid() && id.value() < cells_.size(), "invalid cell id");
  return cells_[id.value()];
}

const Net& Netlist::net(NetId id) const {
  OPISO_REQUIRE(id.valid() && id.value() < nets_.size(), "invalid net id");
  return nets_[id.value()];
}

std::vector<CellId> Netlist::cell_ids() const {
  std::vector<CellId> ids;
  ids.reserve(cells_.size());
  for (std::uint32_t i = 0; i < cells_.size(); ++i) ids.emplace_back(i);
  return ids;
}

std::vector<NetId> Netlist::net_ids() const {
  std::vector<NetId> ids;
  ids.reserve(nets_.size());
  for (std::uint32_t i = 0; i < nets_.size(); ++i) ids.emplace_back(i);
  return ids;
}

NetId Netlist::find_net(std::string_view name) const {
  auto it = net_by_name_.find(std::string(name));
  return it == net_by_name_.end() ? NetId::invalid() : it->second;
}

CellId Netlist::find_cell(std::string_view name) const {
  auto it = cell_by_name_.find(std::string(name));
  return it == cell_by_name_.end() ? CellId::invalid() : it->second;
}

NetId Netlist::add_net(std::string name, unsigned width) {
  OPISO_REQUIRE(!name.empty(), "net name must be non-empty");
  OPISO_REQUIRE(width >= 1 && width <= 64, "net width must be in [1,64]");
  OPISO_REQUIRE(net_by_name_.find(name) == net_by_name_.end(),
                "duplicate net name: " + name);
  NetId id{static_cast<std::uint32_t>(nets_.size())};
  Net n;
  n.name = name;
  n.width = width;
  nets_.push_back(std::move(n));
  net_by_name_.emplace(std::move(name), id);
  return id;
}

unsigned Netlist::infer_width(CellKind kind, const std::vector<NetId>& ins,
                              std::uint64_t param) const {
  switch (kind) {
    case CellKind::PrimaryInput:
    case CellKind::Constant:
      throw Error("infer_width: source kinds carry their own width");
    case CellKind::PrimaryOutput:
      return net(ins.at(0)).width;
    case CellKind::Add:
    case CellKind::Sub:
      return std::max(net(ins.at(0)).width, net(ins.at(1)).width);
    case CellKind::Mul:
      return std::min(64u, net(ins.at(0)).width + net(ins.at(1)).width);
    case CellKind::Eq:
    case CellKind::Lt:
      return 1;
    case CellKind::Shl:
    case CellKind::Shr:
      (void)param;
      return net(ins.at(0)).width;
    case CellKind::Not:
    case CellKind::Buf:
      return net(ins.at(0)).width;
    case CellKind::And:
    case CellKind::Or:
    case CellKind::Xor:
    case CellKind::Nand:
    case CellKind::Nor:
    case CellKind::Xnor:
      return std::max(net(ins.at(0)).width, net(ins.at(1)).width);
    case CellKind::Mux2:
      return std::max(net(ins.at(1)).width, net(ins.at(2)).width);
    case CellKind::Reg:
    case CellKind::Latch:
      return net(ins.at(0)).width;
    case CellKind::IsoAnd:
    case CellKind::IsoOr:
    case CellKind::IsoLatch:
      return net(ins.at(0)).width;
  }
  throw Error("infer_width: invalid kind");
}

void Netlist::check_new_cell(CellKind kind, const std::string& name,
                             const std::vector<NetId>& ins, NetId out) const {
  OPISO_REQUIRE(!name.empty(), "cell name must be non-empty");
  OPISO_REQUIRE(cell_by_name_.find(name) == cell_by_name_.end(),
                "duplicate cell name: " + name);
  const int want = cell_kind_num_inputs(kind);
  OPISO_REQUIRE(static_cast<int>(ins.size()) == want,
                "cell '" + name + "' (" + std::string(cell_kind_name(kind)) + ") needs " +
                    std::to_string(want) + " inputs, got " + std::to_string(ins.size()));
  for (NetId in : ins) {
    OPISO_REQUIRE(in.valid() && in.value() < nets_.size(),
                  "cell '" + name + "' references an invalid input net");
  }
  if (cell_kind_has_output(kind)) {
    OPISO_REQUIRE(out.valid() && out.value() < nets_.size(),
                  "cell '" + name + "' references an invalid output net");
    OPISO_REQUIRE(!nets_[out.value()].driver.valid(),
                  "net '" + nets_[out.value()].name + "' already has a driver");
  } else {
    OPISO_REQUIRE(!out.valid(), "PrimaryOutput cells have no output net");
  }
  // Per-kind width rules on 1-bit control pins.
  auto require_w1 = [&](int port) {
    OPISO_REQUIRE(nets_[ins[static_cast<size_t>(port)].value()].width == 1,
                  "cell '" + name + "': port " + std::string(cell_port_name(kind, port)) +
                      " must be 1 bit wide");
  };
  switch (kind) {
    case CellKind::Mux2:
      require_w1(0);
      break;
    case CellKind::Reg:
    case CellKind::Latch:
    case CellKind::IsoAnd:
    case CellKind::IsoOr:
    case CellKind::IsoLatch:
      require_w1(1);
      break;
    default:
      break;
  }
}

CellId Netlist::add_cell(CellKind kind, std::string name, const std::vector<NetId>& ins,
                         NetId out, std::uint64_t param) {
  check_new_cell(kind, name, ins, out);
  CellId id{static_cast<std::uint32_t>(cells_.size())};
  Cell c;
  c.kind = kind;
  c.name = name;
  c.param = param;
  c.ins = ins;
  c.out = out;
  if (cell_kind_has_output(kind)) {
    Net& onet = nets_[out.value()];
    onet.driver = id;
    c.width = onet.width;
    if (kind != CellKind::PrimaryInput && kind != CellKind::Constant) {
      const unsigned inferred = infer_width(kind, ins, param);
      OPISO_REQUIRE(onet.width == inferred,
                    "cell '" + name + "': output net '" + onet.name + "' width " +
                        std::to_string(onet.width) + " != inferred width " +
                        std::to_string(inferred));
    }
  } else {
    c.width = nets_[ins[0].value()].width;
  }
  for (int p = 0; p < static_cast<int>(ins.size()); ++p) {
    nets_[ins[static_cast<size_t>(p)].value()].fanouts.push_back(Pin{id, p});
  }
  cells_.push_back(std::move(c));
  cell_by_name_.emplace(std::move(name), id);
  if (kind == CellKind::PrimaryInput) inputs_.push_back(id);
  if (kind == CellKind::PrimaryOutput) outputs_.push_back(id);
  return id;
}

NetId Netlist::add_input(const std::string& name, unsigned width) {
  NetId out = add_net(name, width);
  add_cell(CellKind::PrimaryInput, "pi:" + name, {}, out);
  return out;
}

CellId Netlist::add_output(const std::string& name, NetId src) {
  return add_cell(CellKind::PrimaryOutput, "po:" + name, {src}, NetId::invalid());
}

NetId Netlist::add_const(const std::string& name, std::uint64_t value, unsigned width) {
  OPISO_REQUIRE(width >= 1 && width <= 64, "constant width must be in [1,64]");
  const std::uint64_t mask = width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  OPISO_REQUIRE((value & ~mask) == 0, "constant value does not fit its width");
  NetId out = add_net(name, width);
  add_cell(CellKind::Constant, "const:" + name, {}, out, value);
  return out;
}

NetId Netlist::add_unop(CellKind kind, const std::string& name, NetId a) {
  NetId out = add_net(name, infer_width(kind, {a}, 0));
  add_cell(kind, "u:" + name, {a}, out);
  return out;
}

NetId Netlist::add_binop(CellKind kind, const std::string& name, NetId a, NetId b) {
  NetId out = add_net(name, infer_width(kind, {a, b}, 0));
  add_cell(kind, "b:" + name, {a, b}, out);
  return out;
}

NetId Netlist::add_shift(CellKind kind, const std::string& name, NetId a, unsigned amount) {
  OPISO_REQUIRE(kind == CellKind::Shl || kind == CellKind::Shr, "add_shift: not a shift kind");
  NetId out = add_net(name, infer_width(kind, {a}, amount));
  add_cell(kind, "s:" + name, {a}, out, amount);
  return out;
}

NetId Netlist::add_mux2(const std::string& name, NetId sel, NetId a, NetId b) {
  NetId out = add_net(name, infer_width(CellKind::Mux2, {sel, a, b}, 0));
  add_cell(CellKind::Mux2, "m:" + name, {sel, a, b}, out);
  return out;
}

NetId Netlist::add_reg(const std::string& name, NetId d, NetId en) {
  NetId out = add_net(name, net(d).width);
  add_cell(CellKind::Reg, "r:" + name, {d, en}, out);
  return out;
}

NetId Netlist::add_latch(const std::string& name, NetId d, NetId en) {
  NetId out = add_net(name, net(d).width);
  add_cell(CellKind::Latch, "l:" + name, {d, en}, out);
  return out;
}

NetId Netlist::add_iso(CellKind kind, const std::string& name, NetId d, NetId as) {
  OPISO_REQUIRE(cell_kind_is_isolation(kind), "add_iso: not an isolation kind");
  NetId out = add_net(name, net(d).width);
  add_cell(kind, "i:" + name, {d, as}, out);
  return out;
}

void Netlist::reconnect_input(CellId consumer, int port, NetId new_net) {
  OPISO_REQUIRE(consumer.valid() && consumer.value() < cells_.size(), "invalid cell id");
  Cell& c = cells_[consumer.value()];
  OPISO_REQUIRE(port >= 0 && port < static_cast<int>(c.ins.size()),
                "reconnect_input: port out of range");
  OPISO_REQUIRE(new_net.valid() && new_net.value() < nets_.size(), "invalid net id");
  NetId old_net = c.ins[static_cast<size_t>(port)];
  OPISO_REQUIRE(nets_[old_net.value()].width == nets_[new_net.value()].width,
                "reconnect_input: width mismatch");
  auto& old_fanouts = nets_[old_net.value()].fanouts;
  auto it = std::find(old_fanouts.begin(), old_fanouts.end(), Pin{consumer, port});
  OPISO_ASSERT(it != old_fanouts.end(), "fanout list out of sync");
  old_fanouts.erase(it);
  c.ins[static_cast<size_t>(port)] = new_net;
  nets_[new_net.value()].fanouts.push_back(Pin{consumer, port});
}

std::string Netlist::fresh_net_name(const std::string& base) const {
  if (net_by_name_.find(base) == net_by_name_.end()) return base;
  for (int i = 1;; ++i) {
    std::string candidate = base + "_" + std::to_string(i);
    if (net_by_name_.find(candidate) == net_by_name_.end()) return candidate;
  }
}

void Netlist::rename_net(NetId id, const std::string& new_name) {
  OPISO_REQUIRE(id.valid() && id.value() < nets_.size(), "rename_net: invalid id");
  OPISO_REQUIRE(!new_name.empty(), "rename_net: name must be non-empty");
  OPISO_REQUIRE(net_by_name_.find(new_name) == net_by_name_.end(),
                "rename_net: duplicate net name: " + new_name);
  net_by_name_.erase(nets_[id.value()].name);
  nets_[id.value()].name = new_name;
  net_by_name_.emplace(new_name, id);
}

void Netlist::rename_cell(CellId id, const std::string& new_name) {
  OPISO_REQUIRE(id.valid() && id.value() < cells_.size(), "rename_cell: invalid id");
  OPISO_REQUIRE(!new_name.empty(), "rename_cell: name must be non-empty");
  OPISO_REQUIRE(cell_by_name_.find(new_name) == cell_by_name_.end(),
                "rename_cell: duplicate cell name: " + new_name);
  cell_by_name_.erase(cells_[id.value()].name);
  cells_[id.value()].name = new_name;
  cell_by_name_.emplace(new_name, id);
}

std::string Netlist::fresh_cell_name(const std::string& base) const {
  if (cell_by_name_.find(base) == cell_by_name_.end()) return base;
  for (int i = 1;; ++i) {
    std::string candidate = base + "_" + std::to_string(i);
    if (cell_by_name_.find(candidate) == cell_by_name_.end()) return candidate;
  }
}

void Netlist::validate() const {
  for (std::uint32_t ni = 0; ni < nets_.size(); ++ni) {
    const Net& n = nets_[ni];
    if (!n.driver.valid()) throw NetlistError("net '" + n.name + "' has no driver");
    for (const Pin& pin : n.fanouts) {
      if (!pin.cell.valid() || pin.cell.value() >= cells_.size())
        throw NetlistError("net '" + n.name + "' fans out to an invalid cell");
      const Cell& c = cells_[pin.cell.value()];
      if (pin.port < 0 || pin.port >= static_cast<int>(c.ins.size()))
        throw NetlistError("net '" + n.name + "' fanout port out of range");
      if (c.ins[static_cast<size_t>(pin.port)] != NetId{ni})
        throw NetlistError("net '" + n.name + "' fanout list inconsistent with cell '" + c.name +
                           "'");
    }
  }
  for (std::uint32_t ci = 0; ci < cells_.size(); ++ci) {
    const Cell& c = cells_[ci];
    if (cell_kind_has_output(c.kind) &&
        (!c.out.valid() || nets_[c.out.value()].driver != CellId{ci})) {
      throw NetlistError("cell '" + c.name + "' output driver link broken");
    }
  }
  // Acyclicity of the combinational graph (registers break cycles;
  // latches do not). topological_order throws on a combinational cycle.
  (void)topological_order(*this);
}

}  // namespace opiso
