#pragma once
// Cell kinds of the word-level RTL netlist.
//
// The netlist models RT structures as the paper does (Sec. 3): arithmetic
// modules, multiplexors, generic logic gates and registers, plus the
// isolation circuitry the algorithm inserts (IsoAnd / IsoOr / IsoLatch)
// as first-class cells so that power, area and timing overheads fall out
// of the ordinary estimators.

#include <cstdint>
#include <string_view>

#include "support/error.hpp"

namespace opiso {

enum class CellKind : std::uint8_t {
  // Boundary
  PrimaryInput,   // no inputs; output = external stimulus
  PrimaryOutput,  // one input; no output net
  Constant,       // no inputs; output = param value

  // Arithmetic datapath modules (default operand-isolation candidates)
  Add,  // A + B (mod 2^w)
  Sub,  // A - B (mod 2^w)
  Mul,  // A * B (mod 2^w)

  // Comparators (1-bit result)
  Eq,  // A == B
  Lt,  // A < B (unsigned)

  // Shifters (shift amount in param)
  Shl,  // A << param
  Shr,  // A >> param (logical)

  // Generic logic gates (bitwise over the word, 1-bit for control logic)
  Not,
  Buf,
  And,
  Or,
  Xor,
  Nand,
  Nor,
  Xnor,

  // Steering / storage
  Mux2,   // ins: S(1), A(w), B(w); out = S ? B : A
  Reg,    // ins: D(w), EN(1); edge-triggered, Q <= EN ? D : Q
  Latch,  // ins: D(w), EN(1); level-sensitive, transparent while EN = 1

  // Operand-isolation circuitry (inserted by the algorithm)
  IsoAnd,    // ins: D(w), AS(1); out = AS ? D : 0
  IsoOr,     // ins: D(w), AS(1); out = AS ? D : ~0
  IsoLatch,  // ins: D(w), AS(1); transparent while AS = 1, holds otherwise
};

inline constexpr int kNumCellKinds = static_cast<int>(CellKind::IsoLatch) + 1;

/// Short mnemonic used in the .rtn text format and DOT labels.
[[nodiscard]] std::string_view cell_kind_name(CellKind kind);

/// Parse a mnemonic back to a kind; throws ParseError on unknown names.
[[nodiscard]] CellKind cell_kind_from_name(std::string_view name);

/// Number of input pins the kind requires (-1 for PrimaryOutput-style
/// fixed single input is still reported exactly; every kind is fixed).
[[nodiscard]] int cell_kind_num_inputs(CellKind kind);

/// True for cells that have an output net.
[[nodiscard]] constexpr bool cell_kind_has_output(CellKind kind) {
  return kind != CellKind::PrimaryOutput;
}

/// True for two-input arithmetic datapath modules — the default set of
/// operand-isolation candidates ("complex arithmetic operators", Sec. 4).
[[nodiscard]] constexpr bool cell_kind_is_arith(CellKind kind) {
  switch (kind) {
    case CellKind::Add:
    case CellKind::Sub:
    case CellKind::Mul:
      return true;
    default:
      return false;
  }
}

/// True for edge-triggered state (sequential boundary of comb. blocks).
[[nodiscard]] constexpr bool cell_kind_is_register(CellKind kind) { return kind == CellKind::Reg; }

/// True for level-sensitive state. Latches sit inside combinational
/// blocks for traversal purposes but hold state during simulation.
[[nodiscard]] constexpr bool cell_kind_is_latch(CellKind kind) {
  return kind == CellKind::Latch || kind == CellKind::IsoLatch;
}

/// True for the isolation circuitry inserted by the optimizer.
[[nodiscard]] constexpr bool cell_kind_is_isolation(CellKind kind) {
  return kind == CellKind::IsoAnd || kind == CellKind::IsoOr || kind == CellKind::IsoLatch;
}

/// True for simple gates/buffers (used by the gate-level power model).
[[nodiscard]] constexpr bool cell_kind_is_gate(CellKind kind) {
  switch (kind) {
    case CellKind::Not:
    case CellKind::Buf:
    case CellKind::And:
    case CellKind::Or:
    case CellKind::Xor:
    case CellKind::Nand:
    case CellKind::Nor:
    case CellKind::Xnor:
      return true;
    default:
      return false;
  }
}

/// Conventional port names per kind, used by the text format and error
/// messages: e.g. Mux2 -> {"S","A","B"}, Reg -> {"D","EN"}.
[[nodiscard]] std::string_view cell_port_name(CellKind kind, int port);

}  // namespace opiso
