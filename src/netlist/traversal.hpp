#pragma once
// Structural traversals over the netlist.
//
// - topological_order: evaluation order of all cells; registers' outputs
//   are sources (their Q depends only on state), everything else —
//   including transparent latches — is ordered after its inputs. Throws
//   NetlistError on a combinational cycle.
// - combinational_blocks: the partition Algorithm 1 line 1 computes —
//   maximal regions of combinational cells bounded by registers, primary
//   inputs and primary outputs (Sec. 3 / 5.3).
// - transitive fanin/fanout cones, used for multiplexing-function
//   derivation and the legality check that activation logic never taps a
//   signal inside the isolated module's own fanout.

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace opiso {

/// Cells in dependency order: every combinational cell appears after the
/// drivers of all its inputs. Register cells appear in the order their
/// inputs become available (they are *consumers* in this order; their
/// outputs are treated as sources).
[[nodiscard]] std::vector<CellId> topological_order(const Netlist& nl);

/// One combinational block: the cells (no Reg/PI/Const cells; POs are
/// excluded too) of one connected component of the combinational graph.
struct CombBlock {
  int index = 0;
  std::vector<CellId> cells;  ///< in topological order
};

/// Partition all combinational cells (gates, muxes, arith modules,
/// latches, isolation cells, comparators, shifters) into connected
/// components bounded by sequential cells / PIs / POs / constants.
[[nodiscard]] std::vector<CombBlock> combinational_blocks(const Netlist& nl);

/// Map each cell to its block index (-1 for non-combinational cells).
[[nodiscard]] std::vector<int> block_index_of_cells(const Netlist& nl,
                                                    const std::vector<CombBlock>& blocks);

/// Transitive fanout cone of a cell through combinational cells only
/// (stops at register inputs and primary outputs; the stopping cells are
/// *not* included). Includes `root` itself.
[[nodiscard]] std::vector<CellId> combinational_fanout_cone(const Netlist& nl, CellId root);

/// Transitive fanin cone through combinational cells only (stops at
/// register outputs, primary inputs and constants). Includes `root`.
[[nodiscard]] std::vector<CellId> combinational_fanin_cone(const Netlist& nl, CellId root);

/// True if `net` is (transitively, combinationally) driven by the output
/// of `cell` — i.e. inserting logic from `net` to an input of `cell`
/// would create a combinational cycle.
[[nodiscard]] bool net_in_combinational_fanout(const Netlist& nl, CellId cell, NetId net);

/// Strongly connected components of the combinational cell graph that
/// form cycles: components of more than one cell, plus single cells that
/// feed themselves. Iterative Tarjan with an explicit frame stack and
/// on-stack marks — cyclic inputs must come back as findings, never as a
/// hung walk or an exhausted call stack. Deterministic: cells within a
/// component are sorted by id, components ordered by their first cell.
/// Safe to call on netlists that fail validate() (this is how the cycle
/// diagnostics are produced in the first place).
[[nodiscard]] std::vector<std::vector<CellId>> combinational_sccs(const Netlist& nl);

/// True when the combinational graph contains at least one cycle (i.e.
/// topological_order / validate() would throw).
[[nodiscard]] bool has_combinational_cycle(const Netlist& nl);

/// Human-readable path through one cycle: "'a' -> 'b' -> 'a'" (at most
/// four distinct cells named, then "... (+N more)").
[[nodiscard]] std::string describe_comb_cycle(const Netlist& nl,
                                              const std::vector<CellId>& scc);

/// Structural diff for the incremental re-simulation engine: cells of
/// `cur` that do not behave identically to the cell of the same id in
/// `base` — appended cells plus cells whose kind, parameter, width or
/// connectivity (input nets, output net) changed. Requires `cur` to be
/// an append-only evolution of `base` (the isolation transform only
/// appends nets/cells and rewires inputs); throws NetlistError when
/// `cur` has fewer cells or nets than `base`, or when a net carried
/// over from `base` changed width (then no frame of a `base` simulation
/// can be reused). Sorted by id.
[[nodiscard]] std::vector<CellId> changed_cells(const Netlist& base, const Netlist& cur);

/// Transitive forward closure of `seeds` over net fanouts, *through*
/// registers and latches (unlike combinational_fanout_cone, which stops
/// at sequential boundaries): once a cell's output diverges, everything
/// downstream of it — in this or any later cycle — may diverge, so the
/// cone must cross clock edges. Includes the seeds; sorted by id. This
/// is the dirty cone the incremental engine re-evaluates; every cell
/// outside it provably replays the baseline simulation cycle-for-cycle.
[[nodiscard]] std::vector<CellId> dirty_cone(const Netlist& nl,
                                             const std::vector<CellId>& seeds);

}  // namespace opiso
