#include "netlist/text_io.hpp"

#include <fstream>
#include <sstream>

#include "netlist/traversal.hpp"

namespace opiso {

void write_netlist(std::ostream& os, const Netlist& nl) {
  os << "design " << (nl.name().empty() ? "unnamed" : nl.name()) << "\n";
  for (NetId id : nl.net_ids()) {
    const Net& n = nl.net(id);
    os << "net " << n.name << ' ' << n.width << "\n";
  }
  for (CellId id : nl.cell_ids()) {
    const Cell& c = nl.cell(id);
    os << "cell " << c.name << ' ' << cell_kind_name(c.kind);
    if (c.param != 0) os << " param=" << c.param;
    os << " -> " << (c.out.valid() ? nl.net(c.out).name : "-") << " :";
    for (NetId in : c.ins) os << ' ' << nl.net(in).name;
    os << "\n";
  }
}

std::string netlist_to_string(const Netlist& nl) {
  std::ostringstream os;
  write_netlist(os, nl);
  return os.str();
}

Netlist read_netlist(std::istream& is) { return read_netlist(is, NetlistReadOptions{}); }

Netlist read_netlist(std::istream& is, const NetlistReadOptions& options,
                     SourceMap* source_map) {
  Netlist nl;
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& msg) {
    throw ParseError("rtn line " + std::to_string(lineno) + ": " + msg);
  };
  while (std::getline(is, line)) {
    ++lineno;
    // Strip comments and surrounding whitespace.
    if (auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string head;
    if (!(ls >> head)) continue;
    if (head == "design") {
      std::string name;
      if (!(ls >> name)) fail("design needs a name");
      nl.set_name(name);
    } else if (head == "net") {
      std::string name;
      unsigned width = 0;
      if (!(ls >> name >> width)) fail("net needs <name> <width>");
      try {
        nl.add_net(name, width);
        if (source_map != nullptr) source_map->net_lines.emplace(name, lineno);
      } catch (const Error& e) {
        fail(e.what());
      }
    } else if (head == "cell") {
      std::string name, kind_name, tok;
      if (!(ls >> name >> kind_name)) fail("cell needs <name> <kind>");
      std::uint64_t param = 0;
      if (!(ls >> tok)) fail("cell line truncated");
      if (tok.rfind("param=", 0) == 0) {
        param = std::stoull(tok.substr(6));
        if (!(ls >> tok)) fail("cell line truncated after param");
      }
      if (tok != "->") fail("expected '->'");
      std::string out_name;
      if (!(ls >> out_name)) fail("cell needs an output net or '-'");
      std::string colon;
      if (!(ls >> colon) || colon != ":") fail("expected ':' before inputs");
      std::vector<NetId> ins;
      while (ls >> tok) {
        NetId in = nl.find_net(tok);
        if (!in.valid()) fail("unknown input net '" + tok + "'");
        ins.push_back(in);
      }
      NetId out = NetId::invalid();
      if (out_name != "-") {
        out = nl.find_net(out_name);
        if (!out.valid()) fail("unknown output net '" + out_name + "'");
      }
      try {
        nl.add_cell(cell_kind_from_name(kind_name), name, ins, out, param);
        if (source_map != nullptr) source_map->cell_lines.emplace(name, lineno);
      } catch (const Error& e) {
        fail(e.what());
      }
    } else {
      fail("unknown directive '" + head + "'");
    }
  }
  if (options.validate) {
    try {
      nl.validate();
    } catch (const NetlistError& e) {
      // A cycle is a property of the whole design, not one statement; wrap
      // it as a parse diagnostic pointing at the first cell on the cycle so
      // drivers get a line-carrying, stable-coded rejection.
      const auto sccs = combinational_sccs(nl);
      if (sccs.empty()) throw;
      int at = 0;
      if (source_map != nullptr) at = source_map->cell_line(nl.cell(sccs.front().front()).name);
      throw ParseError(ErrCode::LintCombLoop,
                       "rtn line " + std::to_string(at) + ": combinational cycle through " +
                           describe_comb_cycle(nl, sccs.front()),
                       at);
    }
  }
  return nl;
}

Netlist netlist_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_netlist(is);
}

void save_netlist(const std::string& path, const Netlist& nl) {
  std::ofstream os(path);
  OPISO_REQUIRE(os.good(), "cannot open '" + path + "' for writing");
  write_netlist(os, nl);
}

Netlist load_netlist(const std::string& path) {
  std::ifstream is(path);
  OPISO_REQUIRE(is.good(), "cannot open '" + path + "' for reading");
  return read_netlist(is);
}

Netlist load_netlist(const std::string& path, const NetlistReadOptions& options,
                     SourceMap* source_map) {
  std::ifstream is(path);
  OPISO_REQUIRE(is.good(), "cannot open '" + path + "' for reading");
  return read_netlist(is, options, source_map);
}

}  // namespace opiso
