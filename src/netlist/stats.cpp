#include "netlist/stats.hpp"

#include <ostream>
#include <sstream>

namespace opiso {

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats s;
  s.num_cells = nl.num_cells();
  s.num_nets = nl.num_nets();
  for (CellId id : nl.cell_ids()) {
    const Cell& c = nl.cell(id);
    ++s.cells_by_kind[static_cast<size_t>(c.kind)];
    if (cell_kind_is_arith(c.kind)) ++s.num_arith_modules;
    if (cell_kind_is_register(c.kind)) ++s.num_registers;
    if (cell_kind_is_isolation(c.kind)) ++s.num_isolation_cells;
  }
  for (NetId id : nl.net_ids()) s.total_data_bits += nl.net(id).width;
  return s;
}

std::string stats_to_string(const NetlistStats& s) {
  std::ostringstream os;
  os << "cells: " << s.num_cells << ", nets: " << s.num_nets
     << ", arith modules: " << s.num_arith_modules << ", registers: " << s.num_registers
     << ", isolation cells: " << s.num_isolation_cells << ", data bits: " << s.total_data_bits
     << "\n";
  for (int k = 0; k < kNumCellKinds; ++k) {
    if (s.cells_by_kind[static_cast<size_t>(k)] == 0) continue;
    os << "  " << cell_kind_name(static_cast<CellKind>(k)) << ": "
       << s.cells_by_kind[static_cast<size_t>(k)] << "\n";
  }
  return os.str();
}

void write_dot(std::ostream& os, const Netlist& nl) {
  os << "digraph \"" << nl.name() << "\" {\n  rankdir=LR;\n";
  for (CellId id : nl.cell_ids()) {
    const Cell& c = nl.cell(id);
    os << "  c" << id.value() << " [label=\"" << c.name << "\\n" << cell_kind_name(c.kind)
       << "\"";
    if (cell_kind_is_arith(c.kind)) os << ", shape=box";
    if (cell_kind_is_register(c.kind)) os << ", shape=box, peripheries=2";
    if (cell_kind_is_isolation(c.kind)) os << ", style=filled, fillcolor=lightgray";
    os << "];\n";
  }
  for (NetId nid : nl.net_ids()) {
    const Net& n = nl.net(nid);
    for (const Pin& pin : n.fanouts) {
      os << "  c" << n.driver.value() << " -> c" << pin.cell.value() << " [label=\"" << n.name
         << "[" << n.width << "]\"];\n";
    }
  }
  os << "}\n";
}

std::string netlist_to_dot(const Netlist& nl) {
  std::ostringstream os;
  write_dot(os, nl);
  return os.str();
}

}  // namespace opiso
