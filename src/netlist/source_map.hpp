#pragma once
// Mapping from netlist object names back to the 1-based line of the
// textual source (.rtl / .rtn) that created them. Parsers fill one in on
// request; the lint layer uses it so findings can point at input lines
// ("designs_rtl/fig1.rtl:12: warning[lint.width] ...") instead of only
// naming nets and cells. Keyed by name, not id, so the map stays valid
// across transforms that append cells without renaming existing ones.

#include <string>
#include <unordered_map>

namespace opiso {

struct SourceMap {
  std::unordered_map<std::string, int> net_lines;   ///< net name -> 1-based line
  std::unordered_map<std::string, int> cell_lines;  ///< cell name -> 1-based line

  /// Line that declared/created the named net (0 = unknown).
  [[nodiscard]] int net_line(const std::string& name) const {
    auto it = net_lines.find(name);
    return it == net_lines.end() ? 0 : it->second;
  }

  /// Line that created the named cell (0 = unknown).
  [[nodiscard]] int cell_line(const std::string& name) const {
    auto it = cell_lines.find(name);
    return it == cell_lines.end() ? 0 : it->second;
  }
};

}  // namespace opiso
