#pragma once
// Baseline: control-signal gating (Kapadia/Benini/De Micheli, JSSC 1999)
// — Sec. 2.
//
// Instead of inserting activity-blocking cells, CSG gates the *enable*
// of the registers feeding a module so the operands freeze upstream.
// The paper names its two structural blind spots, both reproduced here:
//   1. modules driven by multiple-fanout registers cannot be optimally
//      isolated (freezing the register would corrupt the other readers'
//      data flow), and
//   2. no savings are possible in combinational logic directly fed by
//      primary inputs (there is no register to gate).
//
// A candidate is covered iff every structural source of its input cone
// is a register whose fanout stays inside that cone. For covered
// candidates each source register's enable becomes EN ∧ AS. Because the
// register is gated one cycle before the module consumes the value, AS
// would strictly need a one-cycle look-ahead; like Kapadia's
// control-derived gating signals we use the current-cycle activation
// function as the approximation and bench_baselines reports the
// resulting fidelity alongside the savings.

#include "isolation/algorithm.hpp"

namespace opiso {

struct CsgOptions {
  std::uint64_t sim_cycles = 4096;
  CandidateConfig candidates{};
  MacroPowerModel power{};
};

struct CsgResult {
  Netlist netlist;
  std::size_t num_candidates = 0;
  std::size_t num_covered = 0;
  std::vector<CellId> covered;
  std::vector<CellId> uncovered;
  std::vector<std::string> uncovered_reasons;  ///< parallel to `uncovered`
  double power_before_mw = 0.0;
  double power_after_mw = 0.0;

  [[nodiscard]] double coverage() const {
    return num_candidates ? static_cast<double>(num_covered) /
                                static_cast<double>(num_candidates)
                          : 0.0;
  }
  [[nodiscard]] double power_reduction_pct() const {
    return power_before_mw > 0
               ? 100.0 * (power_before_mw - power_after_mw) / power_before_mw
               : 0.0;
  }
};

[[nodiscard]] CsgResult run_control_signal_gating(const Netlist& design,
                                                  const StimulusFactory& stimuli,
                                                  const CsgOptions& options = {});

}  // namespace opiso
