#include "baseline/guarded_eval.hpp"

#include "boolfn/bdd.hpp"
#include "power/estimator.hpp"

namespace opiso {

GuardedEvalResult run_guarded_evaluation(const Netlist& design, const StimulusFactory& stimuli,
                                         const GuardedEvalOptions& opt) {
  OPISO_REQUIRE(stimuli != nullptr, "run_guarded_evaluation: stimulus factory required");
  GuardedEvalResult result;
  result.netlist = design;
  Netlist& nl = result.netlist;

  // Power before.
  {
    Simulator sim(nl);
    auto stim = stimuli();
    sim.run(*stim, opt.sim_cycles);
    result.power_before_mw = PowerEstimator(opt.power).estimate(nl, sim.stats()).total_mw;
  }

  ExprPool pool;
  NetVarMap vars;
  const ActivationAnalysis analysis = derive_activation(nl, pool, vars);
  const std::vector<CombBlock> blocks = combinational_blocks(nl);
  const std::vector<IsolationCandidate> cands =
      identify_candidates(nl, blocks, analysis, pool, opt.candidates);

  BddManager mgr;
  for (const IsolationCandidate& cand : cands) {
    if (cand.already_isolated) continue;
    ++result.num_candidates;
    const BddRef f = mgr.from_expr(pool, cand.activation);

    // Find the tightest existing signal implied by f (fewest extra
    // 1-cycles under a uniform prior), excluding signals in the
    // candidate's own fanout (combinational-cycle legality).
    NetId best_guard;
    double best_pr = 2.0;
    for (BoolVar v = 0; v < vars.num_vars(); ++v) {
      const NetId g_net = vars.net_of(v);
      if (net_in_combinational_fanout(nl, cand.cell, g_net)) continue;
      if (!mgr.implies(f, mgr.var(v))) continue;
      const double pr = mgr.probability(mgr.var(v), [](BoolVar) { return 0.5; });
      if (pr < best_pr) {
        best_pr = pr;
        best_guard = g_net;
      }
    }
    if (!best_guard.valid()) {
      result.unguarded.push_back(cand.cell);
      continue;
    }
    // Guard with latch banks driven by the existing signal — this is
    // the same bank transform, but the "activation function" is just
    // the found net (guarded evaluation never builds new logic).
    const ExprRef guard_expr = pool.var(vars.var_of(nl, best_guard));
    isolate_module(nl, pool, vars, cand.cell, guard_expr, IsolationStyle::Latch);
    result.guarded.push_back(cand.cell);
    ++result.num_guarded;
  }

  // Power after.
  {
    Simulator sim(nl);
    auto stim = stimuli();
    sim.run(*stim, opt.sim_cycles);
    result.power_after_mw = PowerEstimator(opt.power).estimate(nl, sim.stats()).total_mw;
  }
  return result;
}

}  // namespace opiso
