#include "baseline/control_signal_gating.hpp"

#include <algorithm>
#include <unordered_set>

#include "netlist/traversal.hpp"
#include "power/estimator.hpp"

namespace opiso {

CsgResult run_control_signal_gating(const Netlist& design, const StimulusFactory& stimuli,
                                    const CsgOptions& opt) {
  OPISO_REQUIRE(stimuli != nullptr, "run_control_signal_gating: stimulus factory required");
  CsgResult result;
  result.netlist = design;
  Netlist& nl = result.netlist;

  {
    Simulator sim(nl);
    auto stim = stimuli();
    sim.run(*stim, opt.sim_cycles);
    result.power_before_mw = PowerEstimator(opt.power).estimate(nl, sim.stats()).total_mw;
  }

  ExprPool pool;
  NetVarMap vars;
  const ActivationAnalysis analysis = derive_activation(nl, pool, vars);
  const std::vector<CombBlock> blocks = combinational_blocks(nl);
  const std::vector<IsolationCandidate> cands =
      identify_candidates(nl, blocks, analysis, pool, opt.candidates);

  std::unordered_set<std::uint32_t> gated_regs;
  for (const IsolationCandidate& cand : cands) {
    if (cand.already_isolated) continue;
    ++result.num_candidates;

    // Structural sources of the candidate's input cone.
    const std::vector<CellId> cone = combinational_fanin_cone(nl, cand.cell);
    std::unordered_set<std::uint32_t> cone_set;
    for (CellId id : cone) cone_set.insert(id.value());

    std::vector<CellId> source_regs;
    std::string reason;
    for (CellId id : cone) {
      for (NetId in : nl.cell(id).ins) {
        const CellId drv = nl.net(in).driver;
        const Cell& d = nl.cell(drv);
        if (d.kind == CellKind::PrimaryInput) {
          // Control signals (mux selects, enables) are legitimately
          // PI-driven; the blind spot concerns *data* fed straight from
          // PIs into the cone's datapath cells.
          if (nl.net(in).width > 1) {
            reason = "data fed directly by primary input";
          }
          continue;
        }
        if (d.kind == CellKind::Reg) {
          source_regs.push_back(drv);
          for (const Pin& pin : nl.net(in).fanouts) {
            if (cone_set.find(pin.cell.value()) == cone_set.end() &&
                nl.cell(pin.cell).kind != CellKind::PrimaryOutput) {
              reason = "multiple-fanout register '" + d.name + "' leaves the cone";
            }
          }
        }
      }
      if (!reason.empty()) break;
    }
    if (reason.empty() && source_regs.empty()) {
      reason = "no source register to gate";
    }
    if (reason.empty()) {
      for (CellId r : source_regs) {
        if (gated_regs.count(r.value())) {
          reason = "source register shared with an already-gated candidate";
          break;
        }
      }
    }
    if (!reason.empty()) {
      result.uncovered.push_back(cand.cell);
      result.uncovered_reasons.push_back(reason);
      continue;
    }

    // Gate every source register's enable with the activation function
    // (current-cycle approximation of the required one-cycle look-ahead).
    const NetId as_net = synthesize_activation_logic(
        nl, pool, vars, cand.activation, "csg_" + std::to_string(cand.cell.value()));
    std::sort(source_regs.begin(), source_regs.end());
    source_regs.erase(std::unique(source_regs.begin(), source_regs.end()), source_regs.end());
    for (CellId r : source_regs) {
      const NetId old_en = nl.cell(r).ins[1];
      const NetId new_en = nl.add_binop(
          CellKind::And, nl.fresh_net_name("csg_en_" + std::to_string(r.value())), old_en,
          as_net);
      nl.reconnect_input(r, 1, new_en);
      gated_regs.insert(r.value());
    }
    result.covered.push_back(cand.cell);
    ++result.num_covered;
  }

  {
    Simulator sim(nl);
    auto stim = stimuli();
    sim.run(*stim, opt.sim_cycles);
    result.power_after_mw = PowerEstimator(opt.power).estimate(nl, sim.stats()).total_mw;
  }
  return result;
}

}  // namespace opiso
