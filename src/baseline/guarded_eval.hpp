#pragma once
// Baseline: guarded evaluation (Tiwari/Malik/Ashar, TCAD 1998) — Sec. 2.
//
// Guarded evaluation blocks a logic block with transparent latches
// driven by an *existing* circuit signal. Its structural weakness, which
// the paper calls out, is that "the existence of such a signal cannot be
// guaranteed": a module can only be guarded if some already-present
// 1-bit net g satisfies  f ⟹ g  (g is 1 whenever the module's result is
// observed — guarding with g never corrupts an observed value, it only
// forfeits the savings of the cycles where g = 1 but f = 0).
//
// This implementation searches the existing control nets for the
// tightest such g (fewest satisfying assignments beyond f, ranked by
// BDD probability under uniform inputs) and inserts latch banks driven
// by it. Candidates with no implied signal are left untouched — that
// coverage gap is exactly what bench_baselines quantifies against the
// paper's constructive activation-logic approach.

#include "isolation/algorithm.hpp"

namespace opiso {

struct GuardedEvalOptions {
  std::uint64_t sim_cycles = 4096;
  CandidateConfig candidates{};
  MacroPowerModel power{};
};

struct GuardedEvalResult {
  Netlist netlist;
  std::size_t num_candidates = 0;
  std::size_t num_guarded = 0;
  std::vector<CellId> guarded;
  std::vector<CellId> unguarded;  ///< no existing signal implied by f
  double power_before_mw = 0.0;
  double power_after_mw = 0.0;

  [[nodiscard]] double coverage() const {
    return num_candidates ? static_cast<double>(num_guarded) /
                                static_cast<double>(num_candidates)
                          : 0.0;
  }
  [[nodiscard]] double power_reduction_pct() const {
    return power_before_mw > 0
               ? 100.0 * (power_before_mw - power_after_mw) / power_before_mw
               : 0.0;
  }
};

[[nodiscard]] GuardedEvalResult run_guarded_evaluation(const Netlist& design,
                                                       const StimulusFactory& stimuli,
                                                       const GuardedEvalOptions& options = {});

}  // namespace opiso
