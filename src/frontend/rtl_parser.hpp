#pragma once
// RTL description language frontend.
//
// A compact textual RTL language that elaborates to the word-level
// netlist, so designs can be written the way the paper draws them
// instead of through builder calls:
//
//   # comment
//   design mac
//   input a:8            # ':width' defaults to 1
//   input b:8
//   input en
//   const k:8 = 42
//   wire p = a * b               # widths inferred per operator
//   reg acc:16 = acc + p when en # registers may self/forward-reference
//   wire sel = acc < k           # comparators produce 1-bit wires
//   wire v = sel ? acc : p       # 2:1 multiplexor
//   output out = acc
//
// Statements: design/input/const/wire/reg/latch/output.
// Expressions (loosest to tightest): `c ? a : b`, `|`, `^`, `&`,
// `== <`, `<< >>` (constant amounts), `+ -`, `*`, unary `~ !`, parens,
// identifiers, sized literals `value:width`.
//
// Scoping rules: wires must be defined before use (source order is
// elaboration order); registers and latches may be referenced anywhere
// — including by their own defining expression (accumulators) — but
// must carry an explicit width. `when <expr>` gates the enable; absent,
// the register loads every cycle.

#include <string>

#include "netlist/netlist.hpp"
#include "netlist/source_map.hpp"

namespace opiso {

/// Parse-time knobs. `validate = false` skips the final whole-design
/// validate() so structurally broken designs (combinational cycles) can
/// still be elaborated for analysis; per-statement checks always run.
struct RtlParseOptions {
  bool validate = true;
};

/// Elaborate RTL text to a netlist. Throws ParseError (with line
/// numbers) on syntax errors and NetlistError on elaboration errors. A
/// combinational cycle surfaces as ParseError with code LintCombLoop
/// carrying the line of the first cell on the cycle. If `source_map` is
/// non-null it receives net/cell name -> source line mappings.
[[nodiscard]] Netlist parse_rtl(const std::string& text);
[[nodiscard]] Netlist parse_rtl(const std::string& text, const RtlParseOptions& options,
                                SourceMap* source_map = nullptr);

/// Load from a file.
[[nodiscard]] Netlist parse_rtl_file(const std::string& path);
[[nodiscard]] Netlist parse_rtl_file(const std::string& path, const RtlParseOptions& options,
                                     SourceMap* source_map = nullptr);

}  // namespace opiso
