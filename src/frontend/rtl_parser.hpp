#pragma once
// RTL description language frontend.
//
// A compact textual RTL language that elaborates to the word-level
// netlist, so designs can be written the way the paper draws them
// instead of through builder calls:
//
//   # comment
//   design mac
//   input a:8            # ':width' defaults to 1
//   input b:8
//   input en
//   const k:8 = 42
//   wire p = a * b               # widths inferred per operator
//   reg acc:16 = acc + p when en # registers may self/forward-reference
//   wire sel = acc < k           # comparators produce 1-bit wires
//   wire v = sel ? acc : p       # 2:1 multiplexor
//   output out = acc
//
// Statements: design/input/const/wire/reg/latch/output.
// Expressions (loosest to tightest): `c ? a : b`, `|`, `^`, `&`,
// `== <`, `<< >>` (constant amounts), `+ -`, `*`, unary `~ !`, parens,
// identifiers, sized literals `value:width`.
//
// Scoping rules: wires must be defined before use (source order is
// elaboration order); registers and latches may be referenced anywhere
// — including by their own defining expression (accumulators) — but
// must carry an explicit width. `when <expr>` gates the enable; absent,
// the register loads every cycle.

#include <string>

#include "netlist/netlist.hpp"

namespace opiso {

/// Elaborate RTL text to a netlist. Throws ParseError (with line
/// numbers) on syntax errors and NetlistError on elaboration errors.
[[nodiscard]] Netlist parse_rtl(const std::string& text);

/// Load from a file.
[[nodiscard]] Netlist parse_rtl_file(const std::string& path);

}  // namespace opiso
