#include "frontend/rtl_parser.hpp"

#include "netlist/traversal.hpp"

#include <cctype>
#include <fstream>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace opiso {

namespace {

// ----------------------------------------------------------------- lexer
enum class Tok : std::uint8_t {
  Ident, Number, Colon, Assign, Question, Or, Xor, And, Not, Bang, LParen,
  RParen, Plus, Minus, Star, Shl, Shr, Lt, EqEq, End,
};

struct Token {
  Tok kind;
  std::string text;
  std::uint64_t number = 0;
};

class Lexer {
 public:
  Lexer(std::string_view line, int lineno) : line_(line), lineno_(lineno) { advance(); }

  [[nodiscard]] const Token& peek() const { return current_; }
  Token take() {
    Token t = current_;
    advance();
    return t;
  }
  [[noreturn]] void fail(const std::string& msg) const { fail(ErrCode::ParseSyntax, msg); }
  [[noreturn]] void fail(ErrCode code, const std::string& msg) const {
    throw ParseError(code, "rtl line " + std::to_string(lineno_) + ": " + msg, lineno_);
  }
  Token expect(Tok kind, const char* what) {
    if (current_.kind != kind) fail(std::string("expected ") + what);
    return take();
  }
  [[nodiscard]] int lineno() const { return lineno_; }

 private:
  void advance() {
    while (pos_ < line_.size() && std::isspace(static_cast<unsigned char>(line_[pos_]))) ++pos_;
    if (pos_ >= line_.size() || line_[pos_] == '#') {
      current_ = Token{Tok::End, "", 0};
      return;
    }
    const char c = line_[pos_];
    auto two = [&](char a, char b) {
      return c == a && pos_ + 1 < line_.size() && line_[pos_ + 1] == b;
    };
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < line_.size() &&
             (std::isalnum(static_cast<unsigned char>(line_[pos_])) || line_[pos_] == '_')) {
        ++pos_;
      }
      current_ = Token{Tok::Ident, std::string(line_.substr(start, pos_ - start)), 0};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < line_.size() && std::isalnum(static_cast<unsigned char>(line_[pos_]))) ++pos_;
      const std::string text(line_.substr(start, pos_ - start));
      // stoull stops at the first bad character; demand it consumed the
      // whole token so '0xfg' or '099' cannot silently mis-parse, and
      // surface out-of-range values instead of wrapping.
      try {
        std::size_t consumed = 0;
        const std::uint64_t value = std::stoull(text, &consumed, 0);
        if (consumed != text.size()) {
          fail(ErrCode::ParseNumber, "bad number literal '" + text + "'");
        }
        current_ = Token{Tok::Number, text, value};
      } catch (const ParseError&) {
        throw;
      } catch (const std::out_of_range&) {
        fail(ErrCode::ParseNumber, "number literal '" + text + "' does not fit in 64 bits");
      } catch (const std::exception&) {
        fail(ErrCode::ParseNumber, "bad number literal '" + text + "'");
      }
      return;
    }
    if (two('<', '<')) { pos_ += 2; current_ = {Tok::Shl, "<<", 0}; return; }
    if (two('>', '>')) { pos_ += 2; current_ = {Tok::Shr, ">>", 0}; return; }
    if (two('=', '=')) { pos_ += 2; current_ = {Tok::EqEq, "==", 0}; return; }
    ++pos_;
    switch (c) {
      case ':': current_ = {Tok::Colon, ":", 0}; return;
      case '=': current_ = {Tok::Assign, "=", 0}; return;
      case '?': current_ = {Tok::Question, "?", 0}; return;
      case '|': current_ = {Tok::Or, "|", 0}; return;
      case '^': current_ = {Tok::Xor, "^", 0}; return;
      case '&': current_ = {Tok::And, "&", 0}; return;
      case '~': current_ = {Tok::Not, "~", 0}; return;
      case '!': current_ = {Tok::Bang, "!", 0}; return;
      case '(': current_ = {Tok::LParen, "(", 0}; return;
      case ')': current_ = {Tok::RParen, ")", 0}; return;
      case '+': current_ = {Tok::Plus, "+", 0}; return;
      case '-': current_ = {Tok::Minus, "-", 0}; return;
      case '*': current_ = {Tok::Star, "*", 0}; return;
      case '<': current_ = {Tok::Lt, "<", 0}; return;
      default: fail(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view line_;
  int lineno_;
  std::size_t pos_ = 0;
  Token current_{Tok::End, "", 0};
};

// Widths are validated before they reach Netlist builders so the
// diagnostic carries the input line, and so a declared width never
// truncates through a narrowing cast (':4294967297' must not become ':1').
unsigned checked_width(Lexer& lx, std::uint64_t w) {
  if (w < 1 || w > 64) {
    lx.fail(ErrCode::ParseWidth, "width " + std::to_string(w) + " out of range [1,64]");
  }
  return static_cast<unsigned>(w);
}

// Nested expressions recurse through parse_ternary/parse_unary/
// parse_primary; bound the depth so '((((...' exhausts the budget with a
// diagnostic instead of the stack.
constexpr int kMaxExprDepth = 256;

// ------------------------------------------------------------ elaborator
struct Elaborator {
  Netlist nl;
  std::unordered_map<std::string, NetId> symbols;
  NetId const_true;
  int temp_counter = 0;
  int expr_depth = 0;

  struct DepthGuard {
    Elaborator& el;
    DepthGuard(Elaborator& e, Lexer& lx) : el(e) {
      if (++el.expr_depth > kMaxExprDepth) {
        --el.expr_depth;
        lx.fail(ErrCode::ParseDepth,
                "expression nesting exceeds " + std::to_string(kMaxExprDepth) + " levels");
      }
    }
    ~DepthGuard() { --el.expr_depth; }
  };

  NetId lookup(Lexer& lx, const std::string& name) {
    auto it = symbols.find(name);
    if (it == symbols.end()) {
      lx.fail(ErrCode::ParseUnknownRef, "unknown signal '" + name + "'");
    }
    return it->second;
  }

  // Redefinitions are checked up front, before any expression is
  // elaborated under the statement's name hint — otherwise the netlist
  // rename trips first and the diagnostic loses its parse.duplicate
  // code (and points at the builder, not the input).
  void declare(Lexer& lx, const std::string& name) {
    if (symbols.count(name) != 0) {
      lx.fail(ErrCode::ParseDuplicate, "redefinition of '" + name + "'");
    }
  }

  void define(Lexer& lx, const std::string& name, NetId net) {
    if (!symbols.emplace(name, net).second) {
      lx.fail(ErrCode::ParseDuplicate, "redefinition of '" + name + "'");
    }
  }

  NetId ensure_true() {
    if (!const_true.valid()) const_true = nl.add_const("__true", 1, 1);
    return const_true;
  }

  std::string temp_name() { return nl.fresh_net_name("__t" + std::to_string(temp_counter++)); }

  // Expression parsing, loosest binding first. `hint` names the net the
  // top-level operation produces (empty -> generated temp name).
  NetId parse_expr(Lexer& lx, const std::string& hint = "") { return parse_ternary(lx, hint); }

  NetId parse_ternary(Lexer& lx, const std::string& hint) {
    DepthGuard guard(*this, lx);
    NetId cond = parse_or(lx, "");
    if (lx.peek().kind != Tok::Question) {
      return maybe_name(lx, cond, hint);
    }
    lx.take();
    NetId then_net = parse_or(lx, "");
    lx.expect(Tok::Colon, "':' in ternary");
    NetId else_net = parse_ternary(lx, "");
    // Mux2 semantics: S = 1 selects the B leg, so `c ? a : b` puts the
    // then-value on B.
    return nl.add_mux2(hint.empty() ? temp_name() : hint, cond, else_net, then_net);
  }

  NetId binop_chain(Lexer& lx, const std::string& hint, NetId (Elaborator::*next)(Lexer&),
                    const std::vector<std::pair<Tok, CellKind>>& ops) {
    NetId lhs = (this->*next)(lx);
    while (true) {
      CellKind kind{};
      bool matched = false;
      for (const auto& [tok, k] : ops) {
        if (lx.peek().kind == tok) {
          kind = k;
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
      lx.take();
      NetId rhs = (this->*next)(lx);
      const bool last = [&] {
        for (const auto& [tok, k] : ops) {
          (void)k;
          if (lx.peek().kind == tok) return false;
        }
        return true;
      }();
      const std::string name = (last && !hint.empty()) ? hint : temp_name();
      lhs = nl.add_binop(kind, name, lhs, rhs);
    }
  }

  NetId parse_or(Lexer& lx, const std::string& hint) {
    return binop_chain(lx, hint, &Elaborator::parse_xor_entry, {{Tok::Or, CellKind::Or}});
  }
  NetId parse_xor_entry(Lexer& lx) { return parse_xor(lx, ""); }
  NetId parse_xor(Lexer& lx, const std::string& hint) {
    return binop_chain(lx, hint, &Elaborator::parse_and_entry, {{Tok::Xor, CellKind::Xor}});
  }
  NetId parse_and_entry(Lexer& lx) { return parse_and(lx, ""); }
  NetId parse_and(Lexer& lx, const std::string& hint) {
    return binop_chain(lx, hint, &Elaborator::parse_cmp_entry, {{Tok::And, CellKind::And}});
  }
  NetId parse_cmp_entry(Lexer& lx) { return parse_cmp(lx, ""); }
  NetId parse_cmp(Lexer& lx, const std::string& hint) {
    return binop_chain(lx, hint, &Elaborator::parse_shift_entry,
                       {{Tok::EqEq, CellKind::Eq}, {Tok::Lt, CellKind::Lt}});
  }
  NetId parse_shift_entry(Lexer& lx) { return parse_shift(lx, ""); }

  NetId parse_shift(Lexer& lx, const std::string& hint) {
    NetId lhs = parse_add(lx, "");
    while (lx.peek().kind == Tok::Shl || lx.peek().kind == Tok::Shr) {
      const CellKind kind = lx.take().kind == Tok::Shl ? CellKind::Shl : CellKind::Shr;
      const Token amount = lx.expect(Tok::Number, "constant shift amount");
      // Nets are at most 64 bits wide, so any larger amount is a typo;
      // rejecting it also rules out silent truncation mod 2^32.
      if (amount.number > 64) {
        lx.fail(ErrCode::ParseNumber,
                "shift amount " + amount.text + " exceeds the 64-bit net limit");
      }
      const bool last = lx.peek().kind != Tok::Shl && lx.peek().kind != Tok::Shr;
      lhs = nl.add_shift(kind, (last && !hint.empty()) ? hint : temp_name(), lhs,
                         static_cast<unsigned>(amount.number));
    }
    return lhs;
  }

  NetId parse_add(Lexer& lx, const std::string& hint) {
    return binop_chain(lx, hint, &Elaborator::parse_mul_entry,
                       {{Tok::Plus, CellKind::Add}, {Tok::Minus, CellKind::Sub}});
  }
  NetId parse_mul_entry(Lexer& lx) { return parse_mul(lx, ""); }
  NetId parse_mul(Lexer& lx, const std::string& hint) {
    return binop_chain(lx, hint, &Elaborator::parse_unary_entry, {{Tok::Star, CellKind::Mul}});
  }
  NetId parse_unary_entry(Lexer& lx) { return parse_unary(lx, ""); }

  NetId parse_unary(Lexer& lx, const std::string& hint) {
    DepthGuard guard(*this, lx);
    if (lx.peek().kind == Tok::Not || lx.peek().kind == Tok::Bang) {
      lx.take();
      NetId inner = parse_unary(lx, "");
      return nl.add_unop(CellKind::Not, hint.empty() ? temp_name() : hint, inner);
    }
    return parse_primary(lx, hint);
  }

  NetId parse_primary(Lexer& lx, const std::string& hint) {
    const Token t = lx.take();
    switch (t.kind) {
      case Tok::Ident:
        return lookup(lx, t.text);
      case Tok::Number: {
        // Sized literal: value:width.
        if (lx.peek().kind != Tok::Colon) lx.fail("literal needs a width: value:width");
        lx.take();
        const Token w = lx.expect(Tok::Number, "literal width");
        return nl.add_const(hint.empty() ? temp_name() : hint, t.number,
                            checked_width(lx, w.number));
      }
      case Tok::LParen: {
        NetId inner = parse_expr(lx, hint);
        lx.expect(Tok::RParen, "')'");
        return inner;
      }
      default:
        lx.fail("expected identifier, literal or '('");
    }
  }

  /// Give `net` the name `hint`: generated temporaries are renamed in
  /// place (their driving cell too); pre-existing signals (`wire x = y`)
  /// get a buffer so both names stay addressable.
  NetId maybe_name(Lexer& lx, NetId net, const std::string& hint) {
    (void)lx;
    if (hint.empty()) return net;
    if (nl.net(net).name.rfind("__t", 0) == 0) {
      const CellId drv = nl.net(net).driver;
      nl.rename_net(net, hint);
      nl.rename_cell(drv, nl.fresh_cell_name(hint));
      return net;
    }
    return nl.add_unop(CellKind::Buf, hint, net);
  }
};

struct Statement {
  int lineno;
  std::string text;
};

std::optional<unsigned> parse_width_suffix(Lexer& lx) {
  if (lx.peek().kind != Tok::Colon) return std::nullopt;
  lx.take();
  const Token w = lx.expect(Tok::Number, "width");
  return checked_width(lx, w.number);
}

}  // namespace

Netlist parse_rtl(const std::string& text) { return parse_rtl(text, RtlParseOptions{}); }

Netlist parse_rtl(const std::string& text, const RtlParseOptions& options,
                  SourceMap* source_map) {
  // Lines are always tracked in a local map even when the caller passes
  // none: the cycle diagnostic below needs a line to point at.
  SourceMap local_map;
  SourceMap& map = source_map != nullptr ? *source_map : local_map;

  // Split into statements (one per line; '#' comments).
  std::vector<Statement> stmts;
  {
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
      ++lineno;
      if (auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
      bool blank = true;
      for (char c : line) {
        if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
      }
      if (!blank) stmts.push_back(Statement{lineno, line});
    }
  }

  Elaborator el;

  // Attribute every net/cell the elaborator created while handling a
  // statement to that statement's line. Renames happen within the
  // statement that performs them, so the names seen here are final.
  std::size_t nets_seen = 0;
  std::size_t cells_seen = 0;
  auto record_new = [&](int lineno) {
    for (; nets_seen < el.nl.num_nets(); ++nets_seen) {
      map.net_lines.emplace(el.nl.net(NetId{static_cast<std::uint32_t>(nets_seen)}).name, lineno);
    }
    for (; cells_seen < el.nl.num_cells(); ++cells_seen) {
      map.cell_lines.emplace(el.nl.cell(CellId{static_cast<std::uint32_t>(cells_seen)}).name,
                             lineno);
    }
  };

  // ---- pass 1: pre-declare registers and latches so any statement —
  // including their own — may reference them (feedback), and pick up
  // the design name.
  struct SeqDecl {
    CellId cell;
    Statement stmt;
  };
  std::vector<SeqDecl> seq;
  for (const Statement& s : stmts) {
    try {
      Lexer lx(s.text, s.lineno);
      if (lx.peek().kind != Tok::Ident) lx.fail("expected a statement keyword");
      const std::string head = lx.peek().text;
      if (head == "design") {
        lx.take();
        el.nl.set_name(lx.expect(Tok::Ident, "design name").text);
      } else if (head == "reg" || head == "latch") {
        lx.take();
        const Token name = lx.expect(Tok::Ident, "register name");
        const auto width = parse_width_suffix(lx);
        if (!width) lx.fail("'" + name.text + "': reg/latch needs an explicit width");
        const NetId q = el.nl.add_net(name.text, *width);
        const NetId en = el.ensure_true();
        // D self-loops on Q until pass 2 elaborates the expression.
        const CellId cell = el.nl.add_cell(head == "reg" ? CellKind::Reg : CellKind::Latch,
                                           (head == "reg" ? "r:" : "l:") + name.text, {q, en}, q);
        el.define(lx, name.text, q);
        seq.push_back(SeqDecl{cell, s});
      }
      record_new(s.lineno);
    } catch (const ParseError&) {
      throw;
    } catch (const Error& e) {
      // Netlist builders reject e.g. a reg whose Q clashes with an
      // earlier net; re-raise with the offending line attached.
      throw ParseError(ErrCode::ParseDuplicate,
                       "rtl line " + std::to_string(s.lineno) + ": " + e.what(), s.lineno);
    }
  }

  // ---- pass 2: elaborate statements in source order. Netlist-level
  // violations (duplicate names, width rules) surface as ParseErrors
  // carrying the offending line.
  std::size_t seq_index = 0;
  for (const Statement& s : stmts) {
    try {
    Lexer lx(s.text, s.lineno);
    const std::string head = lx.expect(Tok::Ident, "statement keyword").text;
    if (head == "design") continue;
    if (head == "input") {
      const Token name = lx.expect(Tok::Ident, "input name");
      el.declare(lx, name.text);
      const unsigned width = parse_width_suffix(lx).value_or(1);
      el.define(lx, name.text, el.nl.add_input(name.text, width));
    } else if (head == "const") {
      const Token name = lx.expect(Tok::Ident, "const name");
      el.declare(lx, name.text);
      const auto width = parse_width_suffix(lx);
      if (!width) lx.fail("const needs a width");
      lx.expect(Tok::Assign, "'='");
      const Token value = lx.expect(Tok::Number, "constant value");
      el.define(lx, name.text, el.nl.add_const(name.text, value.number, *width));
    } else if (head == "wire") {
      const Token name = lx.expect(Tok::Ident, "wire name");
      el.declare(lx, name.text);
      const auto width = parse_width_suffix(lx);
      lx.expect(Tok::Assign, "'='");
      const NetId net = el.parse_expr(lx, name.text);
      if (width && el.nl.net(net).width != *width) {
        lx.fail("wire '" + name.text + "' declared :" + std::to_string(*width) +
                " but expression has width " + std::to_string(el.nl.net(net).width));
      }
      el.define(lx, name.text, net);
    } else if (head == "reg" || head == "latch") {
      const SeqDecl& decl = seq.at(seq_index++);
      lx.expect(Tok::Ident, "register name");
      (void)parse_width_suffix(lx);
      lx.expect(Tok::Assign, "'='");
      const NetId d = el.parse_expr(lx, "");
      if (el.nl.net(d).width != el.nl.cell(decl.cell).width) {
        lx.fail("reg/latch D width mismatch");
      }
      el.nl.reconnect_input(decl.cell, 0, d);
      if (lx.peek().kind == Tok::Ident && lx.peek().text == "when") {
        lx.take();
        const NetId en = el.parse_expr(lx, "");
        if (el.nl.net(en).width != 1) lx.fail("'when' expression must be 1 bit wide");
        el.nl.reconnect_input(decl.cell, 1, en);
      }
    } else if (head == "output") {
      const Token name = lx.expect(Tok::Ident, "output name");
      lx.expect(Tok::Assign, "'='");
      const NetId net = el.parse_expr(lx, "");
      el.nl.add_output(name.text, net);
    } else {
      lx.fail("unknown statement '" + head + "'");
    }
    if (lx.peek().kind != Tok::End) lx.fail("trailing tokens after statement");
    record_new(s.lineno);
    } catch (const ParseError&) {
      throw;
    } catch (const Error& e) {
      throw ParseError(ErrCode::ParseSyntax,
                       "rtl line " + std::to_string(s.lineno) + ": " + e.what(), s.lineno);
    }
  }

  if (options.validate) {
    try {
      el.nl.validate();
    } catch (const NetlistError&) {
      // A combinational cycle is a whole-design property, so validate()
      // cannot blame a statement. Rebuild the blame here: name the cycle
      // and point at the line of its first cell.
      const auto sccs = combinational_sccs(el.nl);
      if (sccs.empty()) throw;
      const int at = map.cell_line(el.nl.cell(sccs.front().front()).name);
      throw ParseError(ErrCode::LintCombLoop,
                       "rtl line " + std::to_string(at) + ": combinational cycle through " +
                           describe_comb_cycle(el.nl, sccs.front()),
                       at);
    }
  }
  return el.nl;
}

Netlist parse_rtl_file(const std::string& path) {
  return parse_rtl_file(path, RtlParseOptions{});
}

Netlist parse_rtl_file(const std::string& path, const RtlParseOptions& options,
                       SourceMap* source_map) {
  std::ifstream is(path);
  if (!is.good()) throw IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_rtl(buf.str(), options, source_map);
}

}  // namespace opiso
