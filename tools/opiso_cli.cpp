// opiso — command-line front door to the library.
//
//   opiso stats    <design>                     netlist statistics
//   opiso dot      <design>                     GraphViz dump to stdout
//   opiso activation <design> [--lookahead]     derived activation signals
//   opiso power    <design> [--cycles N]        power estimate (uniform stimuli)
//   opiso isolate  <design> [options] [-o out.rtn]   run Algorithm 1
//       --style and|or|latch   --cycles N   --omega-a X   --h-min X
//       --slack-threshold NS   --lookahead  --report
//   opiso explain  <design> --candidate NAME    per-candidate Eq. 1-5
//       decision narrative from the power-attribution ledger
//   opiso optimize <design> [-o out.rtn]        optimization passes
//   opiso rewrite  <design> [-o out.rtn]        equality-saturation datapath
//       rewrite (isolation-aware extraction, verify::equiv-gated)
//   opiso lower    <design> [-o out.rtn]        gate-level expansion
//   opiso verify   <original> <transformed>     BDD equivalence proof
//   opiso lint     <design...> [options]        static analysis (pass-based)
//       --fail-on error|warning   --bdd-budget N   --slack-threshold NS
//   opiso sweep    <design...> [options]        multithreaded simulation sweep
//       --seeds N   --cycles N   --lanes N   --threads N   --sim scalar|parallel
//       --no-prelint (skip the per-task lint pre-flight)
//   opiso coverage <design> [options]           stimulus-coverage report
//       --min-coverage-pct P (the CI gate)  --metrics out.json
//   opiso report diff <a.json> <b.json>         tolerance-aware report diff
//       [--tolerances FILE] [--subset]          exit 0 match, 1 diff, 2 usage
//   opiso wave     <design> [options]           per-cycle power waveform
//       --vcd out.vcd  --trace-power out.json  --window N  --compare-isolated
//   opiso vcd-check <file.vcd>                  VCD round-trip validation
//
// Observability (any command): --trace FILE (Chrome-trace JSON),
// --metrics FILE (metrics snapshot; for isolate: the full run report),
// --profile FILE (collapsed-stack span profile for flamegraphs),
// --progress (per-iteration / per-sweep-task one-liners on stderr).
//
// <design> is a .rtn structural netlist or a .rtl RTL-language file
// (chosen by extension).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "baseline/control_signal_gating.hpp"
#include "designs/designs.hpp"
#include "frontend/rtl_parser.hpp"
#include "isolation/candidates.hpp"
#include "isolation/report.hpp"
#include "isolation/savings.hpp"
#include "lint/lint.hpp"
#include "lower/gate_level.hpp"
#include "netlist/stats.hpp"
#include "netlist/text_io.hpp"
#include "netlist/traversal.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/report_diff.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "obs/vcd.hpp"
#include "obs/wave.hpp"
#include "opt/passes.hpp"
#include "opt/rewrite_rules.hpp"
#include "power/estimator.hpp"
#include "power/power_trace.hpp"
#include "sim/cycle_trace.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/sweep.hpp"
#include "verify/equiv.hpp"

namespace {

using namespace opiso;

[[noreturn]] void usage() {
  std::cerr <<
      "usage: opiso <command> <design.rtn|design.rtl> [options]\n"
      "\n"
      "commands:\n"
      "  stats      <design>                  netlist statistics\n"
      "  dot        <design>                  GraphViz dump to stdout\n"
      "  activation <design> [--lookahead]    derived activation signals\n"
      "  power      <design> [--cycles N]     power estimate (uniform stimuli)\n"
      "  isolate    <design> [-o out.rtn]     run Algorithm 1:\n"
      "      --style and|or|latch   isolation bank style (default: and)\n"
      "      --cycles N             simulated cycles per iteration (default: 8192)\n"
      "      --omega-a X            area weight in the cost function (default: 0.2)\n"
      "      --h-min X              minimum cost value to isolate (default: 0)\n"
      "      --slack-threshold NS   reject candidates estimated below this slack\n"
      "      --lookahead            register-lookahead activation derivation\n"
      "      --report               print the per-iteration candidate log\n"
      "      --bdd-budget N         BDD node budget for activation-function\n"
      "                             simplification; over-budget functions keep\n"
      "                             their structural form (0 = unlimited)\n"
      "      --no-incremental       re-simulate every iteration in full instead\n"
      "                             of replaying the dirty cone of the committed\n"
      "                             banks (results are bit-identical either way;\n"
      "                             --incremental restores the default)\n"
      "      --confidence-level P   batch-means confidence level (default 0.95);\n"
      "                             the run report gains opiso.confidence/v1 and\n"
      "                             opiso.coverage/v1 sections (on by default;\n"
      "                             --no-confidence disables the collection)\n"
      "      --batch-frames N       frames per batch-means window (default 16)\n"
      "      --min-ci-halfwidth MW  flag the run (exit 3, converged:false in the\n"
      "                             report) when the final power CI half-width\n"
      "                             exceeds MW — never silently extends the run\n"
      "      --rewrite              rewrite the datapath (equality saturation,\n"
      "                             isolation-aware extraction) before isolating;\n"
      "                             the run report gains an opiso.rewrite/v1\n"
      "                             section\n"
      "  explain    <design> --candidate NAME run Algorithm 1, then print the\n"
      "      Eq. 1-5 decision narrative for one candidate from the power-\n"
      "      attribution ledger (accepts the isolate options; exits 1 if the\n"
      "      candidate was never evaluated)\n"
      "  optimize   <design> [-o out.rtn]     optimization passes\n"
      "  rewrite    <design> [-o out.rtn]     equality-saturation datapath\n"
      "      rewrite with isolation-aware extraction; every emitted netlist is\n"
      "      proven equivalent (verify::equiv) or the input passes through\n"
      "      unchanged; --metrics FILE writes the opiso.rewrite/v1 section\n"
      "  lower      <design> [-o out.rtn]     gate-level expansion\n"
      "  verify     <original> <transformed>  BDD equivalence proof\n"
      "  lint       <design...>               static analysis; passes: comb_loop,\n"
      "      width, drivers, dead_logic, isolation_soundness, isolation_overhead;\n"
      "      findings carry stable lint.* codes (lint.comb_loop, lint.width,\n"
      "      lint.undriven, lint.multi_driven, lint.dangling, lint.dead_logic,\n"
      "      lint.isolation_unsound, lint.isolation_unproven,\n"
      "      lint.isolation_overhead)\n"
      "      --fail-on error|warning  lowest severity that fails the run\n"
      "                             (default: error; exit 1 when any finding\n"
      "                             is at or above it)\n"
      "      --pass NAME            run only the named pass (repeatable)\n"
      "      --bdd-budget N         node budget for the soundness proofs;\n"
      "                             over-budget proofs degrade to\n"
      "                             lint.isolation_unproven warnings\n"
      "      --slack-threshold NS   isolation_overhead flags bank outputs\n"
      "                             below this slack (default: 0)\n"
      "      --metrics FILE writes the opiso.lint/v1 report\n"
      "  sweep      <design...>               multithreaded simulation sweep:\n"
      "      --seeds N              stimulus seeds per design (default: 4)\n"
      "      --cycles N             total cycles per task, split across lanes\n"
      "      --lanes N              bit-parallel lanes, up to the compiled\n"
      "                             plane width (256, or 512 with AVX-512);\n"
      "                             default: the full width\n"
      "      --threads N            worker threads, 0 = hardware (default: 0)\n"
      "      --sim scalar|parallel  simulation engine (default: parallel)\n"
      "      --warmup N             per-lane warmup cycles (default: 0)\n"
      "      --task-budget-sec S    per-task wall-clock budget (default: off)\n"
      "      --task-max-lane-cycles N  per-task stimulus budget (default: off)\n"
      "      --fail-fast            stop launching tasks after the first failure\n"
      "      --inject-failure N     make task N throw (fault-isolation testing)\n"
      "      --no-prelint           skip the per-task lint pre-flight (rejected\n"
      "                             designs are otherwise recorded in the\n"
      "                             report's opiso.task_failures/v1 section\n"
      "                             under their lint.* code)\n"
      "      --isolate              run Algorithm 1 per task (accepts the\n"
      "                             isolate options); report rows gain\n"
      "                             power_before/after_mw, power_reduction_pct,\n"
      "                             iterations and modules_isolated\n"
      "      --confidence-level P / --batch-frames N / --min-ci-halfwidth MW\n"
      "                             collect batch-means confidence per task:\n"
      "                             rows gain opiso.confidence/v1 and\n"
      "                             opiso.coverage/v1 sections (bitwise identical\n"
      "                             across --threads, --sim, and plane widths);\n"
      "                             an under-converged task fails with\n"
      "                             confidence.under-converged in the\n"
      "                             opiso.task_failures/v1 section (exit 3)\n"
      "      designs are builtin names (fig1, design1, design2) or files;\n"
      "      --metrics FILE writes the deterministic sweep report — it is\n"
      "      bitwise identical for any --threads and --sim value;\n"
      "      --progress prints one line per completed task with an ETA;\n"
      "      sweeps are fault-isolated: a throwing or over-budget task is\n"
      "      recorded in the report's opiso.task_failures/v1 section while\n"
      "      the remaining tasks complete (exit code 3)\n"
      "  coverage   <design>                  stimulus-coverage report: net\n"
      "      toggle coverage, never-toggled nets, and per-candidate activation-\n"
      "      signal exercise counts under the isolate measurement discipline\n"
      "      (accepts --cycles/--warmup/--sim/--lanes/--lookahead);\n"
      "      --metrics FILE writes the opiso.coverage/v1 document\n"
      "      --min-coverage-pct P   exit 1 when net toggle coverage is below P\n"
      "                             (the CI coverage gate)\n"
      "  report diff <a.json> <b.json>        structural report diff:\n"
      "      --tolerances FILE      opiso.report_tolerances/v1 rule file\n"
      "      --subset               A is an expected subset of B\n"
      "      exits 0 when the reports match, 1 with a per-field listing\n"
      "      when they diverge beyond tolerance, 2 on usage errors\n"
      "  wave       <design>                  per-cycle power waveform (same\n"
      "      measurement discipline as isolate, so totals match its\n"
      "      power_before/after exactly); prints the toggle/energy heatmap:\n"
      "      --trace-power FILE     write the opiso.power_trace/v1 waveform\n"
      "                             (or opiso.wave_compare/v1 with\n"
      "                             --compare-isolated); FILE '-' = stdout\n"
      "      --vcd FILE             write an IEEE-1364 VCD of net values plus\n"
      "                             per-cell energy/toggle signals (needs the\n"
      "                             scalar engine)\n"
      "      --window N             fold N cycles per waveform sample\n"
      "                             (default 1; sums stay exact)\n"
      "      --compare-isolated     run Algorithm 1, overlay the original and\n"
      "                             isolated waveforms, and list the idle\n"
      "                             intervals exploited with the energy\n"
      "                             reclaimed in each\n"
      "      also accepts the isolate options (--cycles/--style/--sim/...)\n"
      "  vcd-check  <file.vcd>                parse and validate a VCD file\n"
      "      (round-trip gate for the wave exporter; exit 1 on malformed VCD)\n"
      "\n"
      "power and isolate also accept --sim/--lanes to run their\n"
      "measurements on the bit-parallel engine (default 64 lanes there,\n"
      "keeping measured statistics independent of the compiled width).\n"
      "\n"
      "observability (any command):\n"
      "  --trace FILE     write a Chrome-trace JSON timeline of the run\n"
      "  --metrics-prom FILE  write the metrics registry in Prometheus text\n"
      "                   exposition format (counters/gauges/histograms with\n"
      "                   cumulative power-of-two buckets); FILE '-' = stdout;\n"
      "                   the JSON outputs are unchanged\n"
      "  --metrics FILE   write a metrics JSON snapshot; FILE '-' = stdout\n"
      "                   (human output moves to stderr so stdout stays\n"
      "                   one pipeable JSON document)\n"
      "                   (isolate: the full run report with per-iteration tables)\n"
      "  --profile FILE   write a collapsed-stack span profile (flamegraph.pl /\n"
      "                   speedscope input; implies tracing for the run)\n"
      "  --progress       per-iteration (isolate) or per-task (sweep)\n"
      "                   one-liners on stderr\n"
      "  --json-errors    also print failures as one-line JSON diagnostics\n"
      "                   ({\"error\":{\"code\":...,\"severity\":...,...}}) on stderr\n"
      "\n"
      "exit codes: 0 success; 1 command failure (error, verify mismatch,\n"
      "report divergence, lint findings at or above --fail-on severity);\n"
      "2 usage; 3 completed-but-flagged (sweep recorded task failures, or\n"
      "isolate missed --min-ci-halfwidth); the report is still written in\n"
      "full.\n"
      "\n"
      "<design> is a .rtn structural netlist or a .rtl RTL-language file\n"
      "(chosen by extension).\n";
  std::exit(2);
}

Netlist load_design(const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".rtl") return parse_rtl_file(path);
  return load_netlist(path);
}

struct Args {
  std::vector<std::string> positional;
  std::string out_path;
  IsolationStyle style = IsolationStyle::And;
  std::uint64_t cycles = 8192;
  double omega_a = 0.2;
  double h_min = 0.0;
  double slack_threshold = 0.0;
  bool lookahead = false;
  bool report = false;
  std::string trace_path;
  std::string metrics_path;
  std::string profile_path;
  std::string candidate;
  std::string tolerances_path;
  bool subset = false;
  bool progress = false;
  SimEngineKind sim_engine = SimEngineKind::Scalar;
  bool sim_engine_set = false;
  std::uint64_t seeds = 4;
  // 0 = auto: sweep widens to ParallelSimulator::kMaxLanes (throughput);
  // isolate/power/wave keep the 64-lane measurement discipline so run
  // reports and golden files are invariant to the compiled plane width.
  unsigned lanes = 0;
  unsigned threads = 0;
  std::uint64_t warmup = 0;
  bool fail_fast = false;
  double task_budget_sec = 0.0;
  std::uint64_t task_max_lane_cycles = 0;
  std::int64_t inject_failure = -1;  ///< task index to sabotage (testing aid)
  std::size_t bdd_budget = IsolationOptions{}.bdd_node_budget;
  bool incremental = true;
  std::string vcd_path;
  std::string trace_power_path;
  std::uint64_t window = 1;
  bool compare_isolated = false;
  bool json_errors = false;
  Severity fail_on = Severity::Error;
  std::vector<std::string> only_passes;
  bool no_prelint = false;
  bool sweep_isolate = false;
  double confidence_level = 0.95;
  bool confidence_flags = false;  ///< any --confidence-*/--min-ci-halfwidth/--batch-frames seen
  double min_ci_halfwidth = -1.0;
  std::uint32_t batch_frames = 16;
  bool no_confidence = false;
  double min_coverage_pct = -1.0;
  std::string metrics_prom_path;
  bool rewrite = false;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> std::string {
      if (++i >= argc) usage();
      return argv[i];
    };
    if (a == "-o") {
      args.out_path = value();
    } else if (a == "--style") {
      const std::string s = value();
      if (s == "and") args.style = IsolationStyle::And;
      else if (s == "or") args.style = IsolationStyle::Or;
      else if (s == "latch") args.style = IsolationStyle::Latch;
      else usage();
    } else if (a == "--cycles") {
      args.cycles = std::stoull(value());
    } else if (a == "--omega-a") {
      args.omega_a = std::stod(value());
    } else if (a == "--h-min") {
      args.h_min = std::stod(value());
    } else if (a == "--slack-threshold") {
      args.slack_threshold = std::stod(value());
    } else if (a == "--lookahead") {
      args.lookahead = true;
    } else if (a == "--report") {
      args.report = true;
    } else if (a == "--trace") {
      args.trace_path = value();
    } else if (a == "--metrics") {
      args.metrics_path = value();
    } else if (a == "--profile") {
      args.profile_path = value();
    } else if (a == "--candidate") {
      args.candidate = value();
    } else if (a == "--tolerances") {
      args.tolerances_path = value();
    } else if (a == "--subset") {
      args.subset = true;
    } else if (a == "--progress") {
      args.progress = true;
    } else if (a == "--sim") {
      const std::string s = value();
      if (s == "scalar") args.sim_engine = SimEngineKind::Scalar;
      else if (s == "parallel") args.sim_engine = SimEngineKind::Parallel;
      else usage();
      args.sim_engine_set = true;
    } else if (a == "--seeds") {
      args.seeds = std::stoull(value());
    } else if (a == "--lanes") {
      args.lanes = static_cast<unsigned>(std::stoul(value()));
    } else if (a == "--threads") {
      args.threads = static_cast<unsigned>(std::stoul(value()));
    } else if (a == "--warmup") {
      args.warmup = std::stoull(value());
    } else if (a == "--fail-fast") {
      args.fail_fast = true;
    } else if (a == "--task-budget-sec") {
      args.task_budget_sec = std::stod(value());
    } else if (a == "--task-max-lane-cycles") {
      args.task_max_lane_cycles = std::stoull(value());
    } else if (a == "--inject-failure") {
      args.inject_failure = static_cast<std::int64_t>(std::stoll(value()));
    } else if (a == "--vcd") {
      args.vcd_path = value();
    } else if (a == "--trace-power") {
      args.trace_power_path = value();
    } else if (a == "--window") {
      args.window = std::stoull(value());
      if (args.window == 0) usage();
    } else if (a == "--compare-isolated") {
      args.compare_isolated = true;
    } else if (a == "--bdd-budget") {
      args.bdd_budget = static_cast<std::size_t>(std::stoull(value()));
    } else if (a == "--incremental") {
      args.incremental = true;
    } else if (a == "--no-incremental") {
      args.incremental = false;
    } else if (a == "--json-errors") {
      args.json_errors = true;
    } else if (a == "--fail-on") {
      const std::string s = value();
      if (s == "error") args.fail_on = Severity::Error;
      else if (s == "warning") args.fail_on = Severity::Warning;
      else usage();
    } else if (a == "--pass") {
      args.only_passes.push_back(value());
    } else if (a == "--no-prelint") {
      args.no_prelint = true;
    } else if (a == "--isolate") {
      args.sweep_isolate = true;
    } else if (a == "--confidence-level") {
      args.confidence_level = std::stod(value());
      if (args.confidence_level <= 0.0 || args.confidence_level >= 1.0) usage();
      args.confidence_flags = true;
    } else if (a == "--min-ci-halfwidth") {
      args.min_ci_halfwidth = std::stod(value());
      args.confidence_flags = true;
    } else if (a == "--batch-frames") {
      args.batch_frames = static_cast<std::uint32_t>(std::stoul(value()));
      if (args.batch_frames == 0) usage();
      args.confidence_flags = true;
    } else if (a == "--no-confidence") {
      args.no_confidence = true;
    } else if (a == "--min-coverage-pct") {
      args.min_coverage_pct = std::stod(value());
    } else if (a == "--rewrite") {
      args.rewrite = true;
    } else if (a == "--metrics-prom") {
      args.metrics_prom_path = value();
    } else if (!a.empty() && a[0] == '-') {
      usage();
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

void emit(const Args& args, const Netlist& nl) {
  if (args.out_path.empty()) {
    write_netlist(std::cout, nl);
  } else {
    save_netlist(args.out_path, nl);
    std::cerr << "wrote " << args.out_path << "\n";
  }
}

// "-" writes the document to stdout (and nothing else: the "wrote ..."
// chatter stays on stderr-only paths so stdout is pipeable JSON).
void write_json_file(const std::string& path, const obs::JsonValue& doc) {
  if (path == "-") {
    doc.write(std::cout, 1);
    std::cout << '\n';
    return;
  }
  std::ofstream os(path);
  if (!os) throw Error("cannot open '" + path + "' for writing");
  doc.write(os, 1);
  os << '\n';
  std::cerr << "wrote " << path << "\n";
}

/// Human-facing result stream of a command whose machine output may be
/// routed to stdout: falls back to stderr whenever any JSON artifact
/// targets "-" so stdout parses as one JSON document.
std::ostream& human_out(const Args& args) {
  const bool stdout_is_json = args.metrics_path == "-" || args.trace_power_path == "-" ||
                              args.metrics_prom_path == "-";
  return stdout_is_json ? std::cerr : std::cout;
}

// Observability artifacts (after the command has run, so counters and
// spans cover the whole invocation).
void write_obs_artifacts(const Args& args, bool metrics_written) {
  if (!args.metrics_path.empty() && !metrics_written) {
    write_json_file(args.metrics_path, obs::metrics().snapshot());
  }
  if (!args.metrics_prom_path.empty()) {
    if (args.metrics_prom_path == "-") {
      obs::metrics().write_prometheus(std::cout);
    } else {
      std::ofstream os(args.metrics_prom_path);
      if (!os) throw Error("cannot open '" + args.metrics_prom_path + "' for writing");
      obs::metrics().write_prometheus(os);
      std::cerr << "wrote " << args.metrics_prom_path << "\n";
    }
  }
  if (!args.trace_path.empty()) {
    std::ofstream os(args.trace_path);
    if (!os) throw Error("cannot open '" + args.trace_path + "' for writing");
    obs::Tracer::instance().write_chrome_trace(os);
    std::cerr << "wrote " << args.trace_path << "\n";
  }
  if (!args.profile_path.empty()) {
    std::ofstream os(args.profile_path);
    if (!os) throw Error("cannot open '" + args.profile_path + "' for writing");
    const obs::ProfileNode root = obs::build_profile_tree(obs::Tracer::instance().events());
    obs::write_folded(os, root);
    std::cerr << "wrote " << args.profile_path << "\n";
  }
}

obs::JsonValue load_json_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open '" + path + "'");
  std::string text((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  return obs::JsonValue::parse(text);
}

int run_report_diff_cmd(const Args& args) {
  // positional: ["diff", a.json, b.json]
  if (args.positional.size() != 3 || args.positional[0] != "diff") usage();
  const obs::JsonValue a = load_json_file(args.positional[1]);
  const obs::JsonValue b = load_json_file(args.positional[2]);
  obs::ToleranceSpec spec;
  if (!args.tolerances_path.empty()) {
    spec = obs::ToleranceSpec::parse(load_json_file(args.tolerances_path));
  }
  obs::DiffOptions options;
  options.subset = args.subset;
  const std::vector<obs::DiffEntry> entries = obs::diff_reports(a, b, spec, options);
  if (entries.empty()) {
    std::cerr << "reports match (" << args.positional[1] << " vs " << args.positional[2]
              << ")\n";
    return 0;
  }
  std::cerr << args.positional[1] << " vs " << args.positional[2] << ": " << entries.size()
            << " difference(s)\n";
  obs::print_diff(std::cout, entries);
  return 1;
}

/// Load a design for *analysis*: final validate() is skipped so broken
/// structures (combinational cycles) reach the analyzer instead of
/// being rejected by the loader, and source lines are recorded when the
/// caller wants them in diagnostics.
Netlist load_design_lenient(const std::string& path, SourceMap* source_map = nullptr) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".rtl") {
    return parse_rtl_file(path, RtlParseOptions{false}, source_map);
  }
  return load_netlist(path, NetlistReadOptions{false}, source_map);
}

/// Sweep/lint designs are builtin generator names or design files.
Netlist make_sweep_design(const std::string& name, SourceMap* source_map = nullptr) {
  if (name == "fig1") return make_fig1();
  if (name == "design1") return make_design1();
  if (name == "design2") return make_design2();
  return load_design_lenient(name, source_map);
}

lint::LintOptions lint_options(const Args& args) {
  lint::LintOptions opt;
  opt.bdd.max_nodes = args.bdd_budget;
  opt.overhead_slack_threshold_ns = args.slack_threshold;
  opt.only_passes = args.only_passes;
  return opt;
}

int run_lint_cmd(const Args& args, bool& metrics_written) {
  int exit_code = 0;
  obs::JsonValue reports = obs::JsonValue::array();
  for (const std::string& name : args.positional) {
    SourceMap source_map;
    const Netlist nl = make_sweep_design(name, &source_map);
    const lint::LintReport report = lint::run_lint(nl, lint_options(args), &source_map);
    lint::print_lint_text(human_out(args), report, name);
    if (report.fails(args.fail_on)) exit_code = 1;
    if (!args.metrics_path.empty()) reports.push_back(lint::build_lint_report(report));
  }
  if (!args.metrics_path.empty()) {
    // One design -> the bare opiso.lint/v1 document; several -> a
    // wrapper carrying one document per design.
    if (reports.size() == 1) {
      write_json_file(args.metrics_path, reports.at(0));
    } else {
      obs::JsonValue doc = obs::JsonValue::object();
      doc["schema"] = "opiso.lint/v1";
      doc["reports"] = std::move(reports);
      write_json_file(args.metrics_path, doc);
    }
    metrics_written = true;
  }
  return exit_code;
}

IsolationOptions isolate_options(const Args& args);

int run_sweep_cmd(const Args& args, bool& metrics_written) {
  // --isolate: every task runs Algorithm 1 under its own seed instead of
  // a plain measurement. One shared options block; the sweep layer
  // installs the per-task engine config and stimulus factories.
  std::shared_ptr<const IsolationOptions> iso;
  if (args.sweep_isolate) {
    IsolationOptions o = isolate_options(args);
    // Confidence stays opt-in for sweeps (per-task t.confidence below):
    // existing sweep reports keep their exact shape unless asked.
    o.confidence = {};
    iso = std::make_shared<const IsolationOptions>(std::move(o));
  }
  std::vector<SweepTask> tasks;
  for (const std::string& name : args.positional) {
    make_sweep_design(name);  // fail fast on a bad name, before the pool spins up
    for (std::uint64_t seed = 1; seed <= args.seeds; ++seed) {
      SweepTask t;
      t.design = name;
      t.make_design = [name] { return make_sweep_design(name); };
      t.seed = seed;
      t.lanes = args.lanes ? args.lanes : ParallelSimulator::kMaxLanes;
      t.cycles = std::max<std::uint64_t>(1, args.cycles / t.lanes);
      t.warmup = args.warmup;
      t.engine = args.sim_engine_set ? args.sim_engine : SimEngineKind::Parallel;
      if (args.confidence_flags && !args.no_confidence) {
        t.confidence.enabled = true;
        t.confidence.level = args.confidence_level;
        t.confidence.batch_frames = args.batch_frames;
        t.confidence.min_power_ci_halfwidth_mw = args.min_ci_halfwidth;
      }
      t.isolate = iso;
      tasks.push_back(std::move(t));
    }
  }
  if (args.inject_failure >= 0) {
    // Deliberate sabotage of one task so CI (and users) can watch the
    // fault-isolation machinery do its job on demand.
    const auto index = static_cast<std::size_t>(args.inject_failure);
    if (index >= tasks.size()) {
      std::cerr << "sweep: --inject-failure " << index << " out of range (have "
                << tasks.size() << " tasks)\n";
      usage();
    }
    tasks[index].make_design = [index]() -> Netlist {
      throw Error("injected failure in task " + std::to_string(index));
    };
  }
  SweepRunner runner(args.threads);
  const auto t0 = std::chrono::steady_clock::now();
  SweepProgressFn progress;
  if (args.progress) {
    progress = [&tasks](const SweepProgress& p) {
      char line[256];
      std::snprintf(line, sizeof line,
                    "[opiso] sweep %zu/%zu: %s seed %llu done (%.1fs elapsed, eta %.1fs)\n",
                    p.completed, p.total, tasks[p.task_index].design.c_str(),
                    static_cast<unsigned long long>(tasks[p.task_index].seed), p.elapsed_sec,
                    p.eta_sec);
      std::cerr << line;
    };
  }
  SweepRunOptions options;
  options.fail_fast = args.fail_fast;
  options.budget.task_wall_clock_sec = args.task_budget_sec;
  options.budget.task_max_lane_cycles = args.task_max_lane_cycles;
  if (!args.no_prelint) {
    // Lint pre-flight: a design with error-severity findings never
    // reaches a simulator; the rejection lands in the report's
    // opiso.task_failures/v1 section under its lint.* code. Clean
    // designs add nothing to the report, so sweeps stay bitwise
    // identical with and without the pre-flight.
    options.preflight = [](const SweepTask& task, const Netlist& nl) {
      lint::throw_on_findings(lint::run_lint(nl), Severity::Error, task.design);
    };
  }
  const SweepOutcome outcome = runner.run_isolated(tasks, options, progress);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::uint64_t total_lane_cycles = 0;
  for (std::size_t i = 0; i < outcome.results.size(); ++i) {
    if (outcome.failed(i)) continue;
    const SweepResult& r = outcome.results[i];
    total_lane_cycles += r.lane_cycles;
    if (r.isolated_mode) {
      human_out(args) << r.design << " seed " << r.seed << ": isolated " << r.modules_isolated
                      << " module(s) in " << r.iterations << " iteration(s), "
                      << r.power_before_mw << " -> " << r.power_after_mw << " mW ("
                      << r.power_reduction_pct << "% saved, " << r.lane_cycles
                      << " lane-cycles)\n";
    } else {
      human_out(args) << r.design << " seed " << r.seed << ": toggles " << r.toggles
                      << ", power " << r.power_mw << " mW (" << r.lane_cycles
                      << " lane-cycles)\n";
    }
  }
  // Failures go to stderr: stdout and the report stay deterministic
  // so CI can diff runs across --threads and --sim values.
  for (const SweepTaskFailure& f : outcome.failures) {
    std::cerr << "sweep: task " << f.task_index << " (" << f.design << " seed " << f.seed
              << ") failed [" << f.code << "]: " << f.message << "\n";
    if (args.json_errors) {
      std::cerr << OpisoError(ErrCode::TaskFailed, f.message).json() << "\n";
    }
  }
  std::cerr << "sweep: " << tasks.size() << " tasks on " << runner.threads() << " threads, "
            << static_cast<std::uint64_t>(static_cast<double>(total_lane_cycles) /
                                          std::max(secs, 1e-9))
            << " lane-cycles/sec";
  if (!outcome.ok()) std::cerr << ", " << outcome.failures.size() << " failed";
  std::cerr << "\n";
  if (!args.metrics_path.empty()) {
    write_json_file(args.metrics_path, build_sweep_report(outcome));
    metrics_written = true;
  }
  // Deterministic exit-code policy: a sweep that completed but recorded
  // task failures exits 3 (distinct from hard errors = 1, usage = 2).
  return outcome.ok() ? 0 : 3;
}

IsolationOptions isolate_options(const Args& args) {
  IsolationOptions opt;
  opt.style = args.style;
  opt.sim_cycles = args.cycles;
  opt.omega_a = args.omega_a;
  opt.h_min = args.h_min;
  opt.slack_threshold_ns = args.slack_threshold;
  opt.bdd_node_budget = args.bdd_budget;
  opt.activation.register_lookahead = args.lookahead;
  opt.incremental = args.incremental;
  opt.rewrite = args.rewrite;
  // Confidence collection defaults on for isolate-family commands;
  // --no-confidence disables it (plain sweeps enable it only when a
  // confidence flag is given, so throughput benches stay unchanged).
  opt.confidence.enabled = !args.no_confidence;
  opt.confidence.level = args.confidence_level;
  opt.confidence.batch_frames = args.batch_frames;
  opt.confidence.min_power_ci_halfwidth_mw = args.min_ci_halfwidth;
  opt.sim_engine = args.sim_engine;
  if (args.lanes != 0) opt.sim_lanes = args.lanes;
  if (opt.sim_engine == SimEngineKind::Parallel) {
    opt.lane_stimuli = [](unsigned lane) {
      return std::make_unique<UniformStimulus>(sweep_lane_seed(1, lane));
    };
  }
  return opt;
}

struct WaveCapture {
  CycleTrace trace;
  PowerTrace power;
};

/// Trace one measurement round under the *identical* discipline
/// measure_activity uses inside run_operand_isolation (fresh engine,
/// fresh seed-1 stimulus, same warmup and cycle split), so the captured
/// waveform integrates to the same power the isolate command reports.
/// The sink attaches after warmup: the trace covers exactly the cycles
/// the aggregate statistics cover.
WaveCapture capture_wave(const Netlist& nl, const IsolationOptions& opt, std::uint64_t window,
                         bool record_values) {
  CycleTrace trace(window, record_values);
  if (opt.sim_engine == SimEngineKind::Parallel) {
    ParallelSimulator sim(nl, opt.sim_lanes);
    sim.set_stimulus(opt.lane_stimuli);
    const std::uint64_t lanes = sim.lanes();
    if (opt.warmup_cycles > 0) sim.warmup((opt.warmup_cycles + lanes - 1) / lanes);
    sim.set_cycle_sink(&trace);
    sim.run(std::max<std::uint64_t>(1, opt.sim_cycles / lanes));
    sim.set_cycle_sink(nullptr);
  } else {
    Simulator sim(nl);
    UniformStimulus stim(1);
    if (opt.warmup_cycles > 0) sim.warmup(stim, opt.warmup_cycles);
    sim.set_cycle_sink(&trace);
    sim.run(stim, opt.sim_cycles);
    sim.set_cycle_sink(nullptr);
  }
  trace.finish();
  PowerTrace power = compute_power_trace(nl, trace, opt.power);
  return {std::move(trace), std::move(power)};
}

int run_wave_cmd(const Args& args, const Netlist& design) {
  if (!args.vcd_path.empty() && args.sim_engine == SimEngineKind::Parallel) {
    std::cerr << "wave: --vcd needs net values, which only the scalar engine records\n";
    usage();
  }
  const IsolationOptions opt = isolate_options(args);
  std::ostream& out = human_out(args);
  const char* engine = opt.sim_engine == SimEngineKind::Parallel ? "parallel" : "scalar";

  const WaveCapture orig = capture_wave(design, opt, args.window, !args.vcd_path.empty());
  // Bit-for-bit the power the isolate command would report as
  // power_before_mw: same toggles, same cycle count, same estimator.
  const double orig_mw =
      PowerEstimator(opt.power).estimate(design, orig.trace.to_activity_stats()).total_mw;

  if (!args.vcd_path.empty()) {
    std::ofstream os(args.vcd_path);
    if (!os) throw Error("cannot open '" + args.vcd_path + "' for writing");
    obs::write_vcd(os, design, orig.trace, &orig.power);
    std::cerr << "wrote " << args.vcd_path << "\n";
  }

  out << "wave: " << design.name() << " (" << engine << "): " << orig.power.lane_cycles()
      << " lane-cycles in " << orig.power.num_samples() << " sample(s) (window " << args.window
      << "), total " << orig.power.total_energy_fj << " fJ, " << orig_mw << " mW\n";

  if (!args.compare_isolated) {
    obs::write_heatmap_table(out, design, orig.power);
    if (!args.trace_power_path.empty()) {
      obs::JsonValue doc =
          obs::build_power_trace_section(design, orig.power, design.name(), engine);
      doc["estimator_total_mw"] = orig_mw;
      write_json_file(args.trace_power_path, doc);
    }
    return 0;
  }

  // --compare-isolated: run Algorithm 1, retrace the transformed design
  // under the identical discipline, and overlay the two waveforms.
  const IsolationResult res = run_operand_isolation(
      design, [] { return std::make_unique<UniformStimulus>(1); }, opt);
  const WaveCapture iso = capture_wave(res.netlist, opt, args.window, false);
  const double iso_mw =
      PowerEstimator(opt.power).estimate(res.netlist, iso.trace.to_activity_stats()).total_mw;

  obs::JsonValue doc = obs::build_wave_compare(design, orig.power, res.netlist, iso.power,
                                               res.records, design.name());
  doc["original_power_mw"] = orig_mw;
  doc["isolated_power_mw"] = iso_mw;
  doc["isolate_power_before_mw"] = res.power_before_mw;
  doc["isolate_power_after_mw"] = res.power_after_mw;

  out << "wave: isolated " << res.records.size() << " module(s); " << res.power_before_mw
      << " -> " << res.power_after_mw << " mW (" << res.power_reduction_pct() << "% saved)\n";
  for (const obs::JsonValue& iv : doc.at("idle_intervals").elements()) {
    out << "  " << iv.at("name").as_string() << ": reclaimed " << iv.at("reclaimed_fj").as_int64()
        << " fJ over " << iv.at("samples").as_uint64() << " sample(s)\n";
  }
  out << "  reclaimed " << doc.at("reclaimed_total_fj").as_int64() << " fJ total ("
      << doc.at("reclaimed_in_intervals_fj").as_int64() << " fJ in "
      << doc.at("idle_intervals").size() << " idle interval(s))\n";

  if (!args.trace_power_path.empty()) write_json_file(args.trace_power_path, doc);
  return 0;
}

/// `opiso coverage <design>`: one measurement round under the identical
/// discipline run_operand_isolation's final measure uses (same engine
/// split, same probes), rendered as the standalone opiso.coverage/v1
/// document — so a raw design's coverage matches the section an isolate
/// run would embed for it.
int run_coverage_cmd(const Args& args, bool& metrics_written) {
  if (args.positional.size() != 1) usage();
  const Netlist design = make_sweep_design(args.positional[0]);
  IsolationOptions opt = isolate_options(args);
  if (args.warmup > 0) opt.warmup_cycles = args.warmup;

  ExprPool pool;
  NetVarMap vars;
  const ActivationAnalysis analysis = derive_activation(design, pool, vars, opt.activation);
  const std::vector<CombBlock> blocks = combinational_blocks(design);
  const std::vector<IsolationCandidate> cands =
      identify_candidates(design, blocks, analysis, pool, opt.candidates);
  SavingsEstimator estimator(design, pool, vars, cands, opt.power);

  ActivityStats stats;
  if (opt.sim_engine == SimEngineKind::Parallel) {
    ParallelSimulator sim(design, opt.sim_lanes, &pool, &vars);
    if (opt.confidence.enabled) sim.enable_batch_stats(opt.confidence.batch_frames);
    estimator.register_probes(sim);
    sim.set_stimulus(opt.lane_stimuli);
    const std::uint64_t lanes = sim.lanes();
    if (opt.warmup_cycles > 0) sim.warmup((opt.warmup_cycles + lanes - 1) / lanes);
    sim.run(std::max<std::uint64_t>(1, opt.sim_cycles / lanes));
    stats = sim.stats();
  } else {
    Simulator sim(design, &pool, &vars);
    if (opt.confidence.enabled) sim.enable_batch_stats(opt.confidence.batch_frames);
    estimator.register_probes(sim);
    UniformStimulus stim(1);
    if (opt.warmup_cycles > 0) sim.warmup(stim, opt.warmup_cycles);
    sim.run(stim, opt.sim_cycles);
    stats = sim.stats();
  }

  std::vector<CandidateExercise> exercise;
  exercise.reserve(cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    exercise.push_back({design.cell(cands[i].cell).name, estimator.activation_probe(i)});
  }
  const obs::JsonValue doc = build_coverage_section(design, stats, exercise);

  std::ostream& out = human_out(args);
  const double pct = doc.at("toggle_coverage_pct").as_number();
  out << "coverage: " << design.name() << ": " << doc.at("nets_toggled").as_uint64() << "/"
      << doc.at("nets_total").as_uint64() << " nets toggled (" << pct << "%) over "
      << doc.at("cycles").as_uint64() << " cycles\n";
  for (const obs::JsonValue& n : doc.at("never_toggled").elements()) {
    out << "  never toggled: " << n.as_string() << "\n";
  }
  for (const obs::JsonValue& c : doc.at("candidates").elements()) {
    out << "  candidate " << c.at("cell").as_string() << ": active "
        << c.at("active_cycles").as_uint64() << ", idle " << c.at("idle_cycles").as_uint64()
        << ", activation toggles " << c.at("activation_toggles").as_uint64() << ", Pr[AS] "
        << c.at("pr_active").as_number()
        << (c.at("exercised").as_bool() ? "" : "  [NOT exercised]") << "\n";
  }

  if (!args.metrics_path.empty()) {
    write_json_file(args.metrics_path, doc);
    metrics_written = true;
  }
  if (args.min_coverage_pct >= 0.0 && pct < args.min_coverage_pct) {
    std::cerr << "coverage: " << design.name() << " toggle coverage " << pct
              << "% is below the required " << args.min_coverage_pct << "%\n";
    return 1;
  }
  return 0;
}

int run(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string cmd = argv[1];
  const Args args = parse_args(argc, argv);
  if (args.positional.empty()) usage();
  if (!args.trace_path.empty() || !args.profile_path.empty()) {
    obs::Tracer::instance().set_enabled(true);
  }
  int exit_code = 0;
  bool metrics_written = false;
  if (cmd == "report") {
    // No design to load: operands are report files.
    return run_report_diff_cmd(args);
  }
  if (cmd == "sweep") {
    // Handled before the shared design load: sweep takes several
    // designs, by builtin name or path.
    const int rc = run_sweep_cmd(args, metrics_written);
    write_obs_artifacts(args, metrics_written);
    return rc;
  }
  if (cmd == "lint") {
    // Also before the shared load: lint takes several designs and loads
    // them leniently (a cyclic design must reach the analyzer).
    const int rc = run_lint_cmd(args, metrics_written);
    write_obs_artifacts(args, metrics_written);
    return rc;
  }
  if (cmd == "wave") {
    // Before the shared load: wave accepts builtin design names
    // (design1, design2, fig1) as well as files, like sweep.
    const Netlist design = make_sweep_design(args.positional[0]);
    const int rc = run_wave_cmd(args, design);
    write_obs_artifacts(args, metrics_written);
    return rc;
  }
  if (cmd == "coverage") {
    // Before the shared load: coverage accepts builtin design names
    // (design1, design2, fig1) as well as files, like sweep and wave.
    const int rc = run_coverage_cmd(args, metrics_written);
    write_obs_artifacts(args, metrics_written);
    return rc;
  }
  if (cmd == "vcd-check") {
    // Operand is a VCD file, not a design.
    if (args.positional.size() != 1) usage();
    std::ifstream is(args.positional[0]);
    if (!is) throw IoError("cannot open '" + args.positional[0] + "'");
    const std::string text((std::istreambuf_iterator<char>(is)),
                           std::istreambuf_iterator<char>());
    const obs::VcdDocument doc = obs::parse_vcd(text);
    std::cerr << "vcd-check: " << args.positional[0] << ": ok (" << doc.vars.size()
              << " vars, " << doc.num_timestamps << " timestamps, " << doc.num_changes
              << " changes)\n";
    return 0;
  }
  const Netlist design = load_design(args.positional[0]);

  if (cmd == "stats") {
    std::cout << "design '" << design.name() << "'\n"
              << stats_to_string(compute_stats(design));
  } else if (cmd == "dot") {
    write_dot(std::cout, design);
  } else if (cmd == "activation") {
    ExprPool pool;
    NetVarMap vars;
    ActivationOptions opt;
    opt.register_lookahead = args.lookahead;
    const ActivationAnalysis aa = derive_activation(design, pool, vars, opt);
    for (CellId id : design.cell_ids()) {
      const Cell& c = design.cell(id);
      if (!cell_kind_is_arith(c.kind)) continue;
      std::cout << c.name << ": AS = "
                << activation_to_string(design, pool, vars, aa.activation_of(design, id))
                << "\n";
    }
  } else if (cmd == "power") {
    ActivityStats stats;
    if (args.sim_engine == SimEngineKind::Parallel) {
      ParallelSimulator sim(design, args.lanes ? args.lanes : IsolationOptions{}.sim_lanes);
      sim.set_stimulus([](unsigned lane) {
        return std::make_unique<UniformStimulus>(sweep_lane_seed(1, lane));
      });
      sim.run(std::max<std::uint64_t>(1, args.cycles / sim.lanes()));
      stats = sim.stats();
    } else {
      Simulator sim(design);
      UniformStimulus stim(1);
      sim.run(stim, args.cycles);
      stats = sim.stats();
    }
    const PowerBreakdown pb = PowerEstimator().estimate(design, stats);
    std::cout << "total " << pb.total_mw << " mW (arith " << pb.arith_mw << ", steering "
              << pb.steering_mw << ", sequential " << pb.sequential_mw << ", isolation "
              << pb.isolation_mw << ")\n";
  } else if (cmd == "isolate") {
    IsolationOptions opt = isolate_options(args);
    if (args.progress) {
      opt.on_iteration = [](const IterationLog& log) {
        std::cerr << "[opiso] iter " << log.iteration << ": power "
                  << log.total_power_mw << " mW, pool " << log.pool_size << ", evaluated "
                  << log.evaluations.size() << ", isolated " << log.num_isolated << "\n";
      };
    }
    const IsolationResult res = run_operand_isolation(
        design, [] { return std::make_unique<UniformStimulus>(1); }, opt);
    std::cerr << format_isolation_summary(res);
    if (args.report) std::cerr << "\n" << format_iteration_log(res);
    if (!args.metrics_path.empty()) {
      write_json_file(args.metrics_path, obs::build_run_report(res, opt));
      metrics_written = true;
    }
    if (!args.out_path.empty()) emit(args, res.netlist);
    if (opt.confidence.enabled && !res.confidence_converged) {
      // The gate flags, never silently extends: the report (with
      // converged:false) is already written in full.
      std::cerr << "isolate: final power CI half-width exceeds --min-ci-halfwidth "
                << args.min_ci_halfwidth << " mW [confidence.under-converged]\n";
      exit_code = 3;
    }
  } else if (cmd == "explain") {
    if (args.candidate.empty()) {
      std::cerr << "explain: --candidate NAME is required\n";
      usage();
    }
    const IsolationOptions opt = isolate_options(args);
    const IsolationResult res = run_operand_isolation(
        design, [] { return std::make_unique<UniformStimulus>(1); }, opt);
    if (!obs::write_candidate_narrative(std::cout, res, args.candidate)) exit_code = 1;
    if (!args.metrics_path.empty()) {
      write_json_file(args.metrics_path, obs::build_run_report(res, opt));
      metrics_written = true;
    }
  } else if (cmd == "optimize") {
    OptimizeStats stats;
    const Netlist o = optimize(design, {}, &stats);
    std::cerr << "cells " << stats.cells_before << " -> " << stats.cells_after << " (folded "
              << stats.folded_constants << ", simplified " << stats.simplified << ", cse "
              << stats.cse_merged << ", dead " << stats.dead_removed << ")\n";
    emit(args, o);
  } else if (cmd == "rewrite") {
    const RewriteResult r = rewrite_datapath(design);
    if (r.rewritten) {
      std::cerr << "rewritten: cells " << r.cells_before << " -> " << r.cells_after
                << ", cost " << r.cost_before << " -> " << r.cost_after << " ("
                << r.verify_obligations << " equivalence obligations discharged)\n";
    } else {
      std::cerr << "unchanged: " << r.fallback_reason << "\n";
    }
    if (!args.metrics_path.empty()) {
      write_json_file(args.metrics_path, rewrite_report_section(r));
      metrics_written = true;
    }
    emit(args, r.netlist);
  } else if (cmd == "lower") {
    const GateLevelResult g = lower_to_gates(design);
    std::cerr << "lowered to " << g.netlist.num_cells() << " gate-level cells\n";
    emit(args, g.netlist);
  } else if (cmd == "verify") {
    if (args.positional.size() < 2) usage();
    const Netlist other = load_design(args.positional[1]);
    const EquivResult res = check_isolation_equivalence(design, other);
    if (res.equivalent) {
      std::cout << "EQUIVALENT (" << res.obligations_checked << " obligations, "
                << res.bdd_nodes << " BDD nodes)\n";
    } else {
      std::cout << "NOT EQUIVALENT: " << res.reason << "\n";
      exit_code = 1;
    }
  } else {
    usage();
  }

  write_obs_artifacts(args, metrics_written);
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  // --json-errors must work even when parse_args itself throws, so scan
  // for it up front.
  bool json_errors = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-errors") == 0) json_errors = true;
  }
  try {
    return run(argc, argv);
  } catch (const opiso::OpisoError& e) {
    std::cerr << "error[" << e.code_name() << "]: " << e.what() << "\n";
    if (json_errors) std::cerr << e.json() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error[" << opiso::error_code_name(opiso::ErrCode::Internal) << "]: "
              << e.what() << "\n";
    if (json_errors) {
      std::cerr << opiso::OpisoError(opiso::ErrCode::Internal, e.what()).json() << "\n";
    }
    return 1;
  }
}
