// Reproduces Table 2 (design2): the FSM-sequenced MAC datapath whose
// activation statistics are generated internally and cannot be
// controlled from the environment. Paper shape: all three isolation
// styles deliver essentially the same (large) power reduction; the
// latch style pays the largest area overhead; worst-case slack shrinks.

#include <cstdio>

#include "bench_util.hpp"
#include "designs/designs.hpp"

int main() {
  using namespace opiso;
  // design2's stimulus is a plain data stream: the phases that gate the
  // arithmetic come from the internal state counter.
  const StimulusFactory stimuli = [] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(2001));
    // Control-dominated pacing: the FSM advances less than half the
    // cycles, so each arithmetic module idles for long stretches.
    comp->route("start", std::make_unique<ControlledBitStimulus>(0.45, 0.2, 2002));
    return comp;
  };

  IsolationOptions opt;
  opt.sim_cycles = 16384;
  opt.omega_p = 1.0;
  opt.omega_a = 0.05;

  const auto table = bench::run_style_table(make_design2(8, 2), stimuli, opt);
  bench::print_table("Table 2 — design2 (internal FSM-controlled activation):", table);
  bench::emit_json("table2", table);
  std::printf(
      "\nPaper shape: ~equal power reduction for AND/OR/LAT;"
      "\n             LAT has the largest area increase; slack reduced for all.\n");
  return 0;
}
