// Quantifies the Sec.-2 qualitative comparison: coverage and savings of
// automated RTL operand isolation vs guarded evaluation (existing-signal
// guards, Tiwari et al.) and control-signal gating (register-enable
// gating, Kapadia et al.) on fig1, design1 and design2.

#include <cstdio>

#include "baseline/control_signal_gating.hpp"
#include "baseline/guarded_eval.hpp"
#include "designs/designs.hpp"

namespace {

using namespace opiso;

void compare(const char* title, const Netlist& design, const StimulusFactory& stimuli) {
  IsolationOptions opt;
  opt.sim_cycles = 8192;
  opt.omega_a = 0.0;
  opt.h_min = -1e9;  // coverage comparison: isolate everything legal
  const IsolationResult full = run_operand_isolation(design, stimuli, opt);

  GuardedEvalOptions ge_opt;
  ge_opt.sim_cycles = 8192;
  const GuardedEvalResult ge = run_guarded_evaluation(design, stimuli, ge_opt);

  CsgOptions csg_opt;
  csg_opt.sim_cycles = 8192;
  const CsgResult csg = run_control_signal_gating(design, stimuli, csg_opt);

  std::printf("%s\n", title);
  std::printf("  %-26s %10s %12s\n", "technique", "coverage", "power red.");
  std::printf("  %-26s %7zu/%-2zu %10.2f%%\n", "operand isolation (this)", full.records.size(),
              ge.num_candidates, full.power_reduction_pct());
  std::printf("  %-26s %7zu/%-2zu %10.2f%%\n", "guarded evaluation [9]", ge.num_guarded,
              ge.num_candidates, ge.power_reduction_pct());
  std::printf("  %-26s %7zu/%-2zu %10.2f%%\n", "control-signal gating [4]", csg.num_covered,
              csg.num_candidates, csg.power_reduction_pct());
  for (std::size_t i = 0; i < csg.uncovered.size(); ++i) {
    std::printf("      CSG skipped %-10s: %s\n",
                csg.netlist.cell(csg.uncovered[i]).name.c_str(),
                csg.uncovered_reasons[i].c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const StimulusFactory f1_stim = [] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(6001));
    comp->route("G0", std::make_unique<ControlledBitStimulus>(0.3, 0.3, 6002));
    comp->route("G1", std::make_unique<ControlledBitStimulus>(0.3, 0.3, 6003));
    return comp;
  };
  const StimulusFactory d1_stim = [] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(6004));
    comp->route("act", std::make_unique<ControlledBitStimulus>(0.25, 0.2, 6005));
    return comp;
  };
  const StimulusFactory d2_stim = [] { return std::make_unique<UniformStimulus>(6006); };

  std::printf("Baseline comparison (Sec. 2) — coverage = modules optimized / candidates\n\n");
  compare("fig1:", make_fig1(8), f1_stim);
  compare("design1:", make_design1(8), d1_stim);
  compare("design2 (1 lane):", make_design2(8, 1), d2_stim);
  std::printf(
      "Paper shape: operand isolation covers every candidate; guarded\n"
      "evaluation misses disjunctive activation cases; CSG misses PI-fed\n"
      "and multi-fanout-register cases.\n");
  return 0;
}
