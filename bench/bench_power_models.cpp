// Macro-model validation (Sec. 4.1's instrument): word-level and
// bit-level (dual-bit-type flavored) macro models vs a gate-level
// reference measurement of the lowered netlist, under uniform white
// noise and under temporally correlated (random-walk) data.
//
// Expected shape (Landman): under white noise both macro models track
// the reference; under correlated data the word-level model (which
// cannot see that the quiet bits are the *expensive* high-order ones of
// an adder's carry chain — or conversely) drifts, while the bit-level
// model stays close. Either way, correlated data burns much less power
// than white noise at the same throughput.

#include <cmath>
#include <cstdio>

#include "lower/gate_power.hpp"
#include "power/bit_model.hpp"
#include "power/estimator.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace opiso;

Netlist make_datapath(unsigned width) {
  Netlist nl("macro_validation");
  const NetId a = nl.add_input("a", width);
  const NetId b = nl.add_input("b", width);
  const NetId en = nl.add_input("en", 1);
  const NetId sum = nl.add_binop(CellKind::Add, "sum", a, b);
  const NetId dif = nl.add_binop(CellKind::Sub, "dif", a, b);
  const NetId prd = nl.add_binop(CellKind::Mul, "prd", a, b);
  const NetId r1 = nl.add_reg("r1", sum, en);
  const NetId r2 = nl.add_reg("r2", dif, en);
  const NetId r3 = nl.add_reg("r3", prd, en);
  nl.add_output("o1", r1);
  nl.add_output("o2", r2);
  nl.add_output("o3", r3);
  return nl;
}

struct Row {
  double word_mw;
  double bit_mw;
  double gate_mw;
};

Row measure(const Netlist& nl, bool correlated, std::uint64_t cycles) {
  auto make_stim = [&]() -> std::unique_ptr<Stimulus> {
    auto comp = std::make_unique<CompositeStimulus>(
        correlated ? std::unique_ptr<Stimulus>(std::make_unique<CorrelatedWalkStimulus>(0.02, 7101))
                   : std::unique_ptr<Stimulus>(std::make_unique<UniformStimulus>(7101)));
    comp->route("en", std::make_unique<ControlledBitStimulus>(0.5, 0.3, 7102));
    return comp;
  };

  Row row{};
  {
    Simulator sim(nl);
    sim.enable_bit_stats();
    auto stim = make_stim();
    sim.run(*stim, cycles);
    row.word_mw = PowerEstimator().estimate(nl, sim.stats()).total_mw;
    row.bit_mw = BitLevelPowerEstimator().total_power_mw(nl, sim.stats());
  }
  {
    auto stim = make_stim();
    row.gate_mw = measure_gate_level_power(nl, *stim, cycles).total_mw;
  }
  return row;
}

}  // namespace

int main() {
  const Netlist nl = make_datapath(8);
  constexpr std::uint64_t kCycles = 8192;

  std::printf("Macro-model validation — add/sub/mul datapath, 8-bit operands\n\n");
  std::printf("%-22s %10s %10s %12s %10s %10s\n", "stimulus", "word[mW]", "bit[mW]",
              "gate-ref[mW]", "word/ref", "bit/ref");
  for (bool correlated : {false, true}) {
    const Row r = measure(nl, correlated, kCycles);
    std::printf("%-22s %10.3f %10.3f %12.3f %10.2f %10.2f\n",
                correlated ? "correlated walk (2%)" : "uniform white noise", r.word_mw,
                r.bit_mw, r.gate_mw, r.word_mw / r.gate_mw, r.bit_mw / r.gate_mw);
  }
  std::printf(
      "\nExpected shape: correlated data burns a fraction of the white-noise\n"
      "power; the bit-level (dual-bit-type) model tracks the gate-level\n"
      "reference at least as closely as the word-level model under\n"
      "correlation (Landman-style macro modeling, paper ref. [5]).\n");
  return 0;
}
