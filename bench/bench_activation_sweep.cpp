// Reproduces the Sec.-6 activation-statistics experiment on design1:
// "we generated a set of testbenches ranging between low and high static
// probabilities and toggle rates of the activation signal. Average
// reduction in power consumption varied between 19% and 30%; overall the
// power reduction varied between approximately 5% in the worst case and
// 70% in the best case."
//
// The sweep drives the primary-input activation signal `act` with a
// stationary Markov stream at each (Pr[1], toggle-rate) grid point and
// reports the AND-isolation power reduction per point, plus per-row
// averages and the overall min/max.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "designs/designs.hpp"
#include "isolation/algorithm.hpp"

int main() {
  using namespace opiso;
  const std::vector<double> probs = {0.05, 0.10, 0.25, 0.50, 0.75, 0.90};
  const std::vector<double> rel_toggle = {0.25, 0.50, 0.90};  // of max feasible

  IsolationOptions opt;
  opt.sim_cycles = 8192;
  opt.omega_a = 0.05;

  std::printf("Activation-statistics sweep — design1, AND isolation\n");
  std::printf("rows: Pr[act=1]; columns: toggle rate as fraction of 2*min(p,1-p)\n\n");
  std::printf("%8s", "Pr[1]");
  for (double rt : rel_toggle) std::printf("  tr=%.2f*max", rt);
  std::printf("  row-avg\n");

  double overall_min = 1e9;
  double overall_max = -1e9;
  double grand_sum = 0.0;
  int grand_count = 0;

  for (double p1 : probs) {
    std::printf("%8.2f", p1);
    double row_sum = 0.0;
    for (double rt : rel_toggle) {
      const double tr = rt * 2.0 * std::min(p1, 1.0 - p1);
      // Downstream enables pinned high so the sweep measures the
      // first-stage candidates the paper's testbench controls; only the
      // `act` statistics vary.
      const StimulusFactory stimuli = [p1, tr] {
        auto comp =
            std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(3001));
        comp->route("act", std::make_unique<ControlledBitStimulus>(p1, tr, 3002));
        comp->route("g1", std::make_unique<ControlledBitStimulus>(0.9, 0.1, 3003));
        comp->route("g2", std::make_unique<ControlledBitStimulus>(0.9, 0.1, 3004));
        comp->route("sel", std::make_unique<ControlledBitStimulus>(0.5, 0.2, 3005));
        return comp;
      };
      const IsolationResult res = run_operand_isolation(make_design1(8), stimuli, opt);
      const double red = res.power_reduction_pct();
      std::printf("      %6.2f%%", red);
      row_sum += red;
      overall_min = std::min(overall_min, red);
      overall_max = std::max(overall_max, red);
      grand_sum += red;
      ++grand_count;
    }
    std::printf("  %6.2f%%\n", row_sum / static_cast<double>(rel_toggle.size()));
  }

  std::printf("\noverall: min %.2f%%  max %.2f%%  average %.2f%%\n", overall_min, overall_max,
              grand_sum / grand_count);
  std::printf(
      "Paper shape: reduction falls as Pr[act] rises; worst case a few %%,"
      "\n             best case several-fold larger (paper: ~5%% .. ~70%%, avg 19–30%%).\n");
  return 0;
}
