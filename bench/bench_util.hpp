#pragma once
// Shared harness for the table benchmarks: runs the full isolation flow
// for every isolation style on one design and prints the paper's table
// layout (power / %reduction / area / %increase / slack / %reduction).
//
// Each table benchmark also emits a machine-readable BENCH_<name>.json
// (rows plus per-iteration power trajectories and a metrics snapshot)
// so reproduction results are diffable artifacts. Destination directory
// comes from $OPISO_BENCH_JSON_DIR (default: current directory); set it
// to the empty string to disable emission.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "isolation/algorithm.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace opiso::bench {

struct StyleRow {
  std::string label;
  double power_mw = 0.0;
  double power_red_pct = 0.0;  // vs non-isolated
  double area_um2 = 0.0;
  double area_inc_pct = 0.0;
  double slack_ns = 0.0;
  double slack_red_pct = 0.0;
  std::size_t modules_isolated = 0;
  /// Total measured power at the start of each Algorithm-1 iteration —
  /// the optimization trajectory behind the final number.
  std::vector<double> power_trajectory_mw;
};

struct TableResult {
  StyleRow baseline;  ///< non-isolated
  std::vector<StyleRow> rows;
};

/// Runs the Algorithm-1 flow once per style (plus the per-candidate
/// MIXED style extension) and assembles the table. The style flows are
/// independent, so they fan out across a thread pool; rows are reduced
/// in style order, making the table identical to a sequential run.
/// `stimuli` must therefore be pure (each call returns a fresh,
/// identically seeded generator) — every caller passes a seed-
/// constructing lambda, which is exactly that.
inline TableResult run_style_table(const Netlist& design, const StimulusFactory& stimuli,
                                   IsolationOptions opt, bool include_mixed = true) {
  struct Flow {
    std::string label;
    IsolationOptions opt;
  };
  std::vector<Flow> flows;
  for (IsolationStyle style :
       {IsolationStyle::And, IsolationStyle::Or, IsolationStyle::Latch}) {
    opt.style = style;
    opt.choose_style_per_candidate = false;
    flows.push_back({std::string(isolation_style_name(style)) + "-isolated", opt});
  }
  if (include_mixed) {
    opt.choose_style_per_candidate = true;
    flows.push_back({"MIX-isolated", opt});
  }

  std::vector<IsolationResult> results(flows.size());
  ThreadPool pool;
  pool.parallel_for(flows.size(), [&](std::size_t i) {
    results[i] = run_operand_isolation(design, stimuli, flows[i].opt);
  });

  TableResult table;
  const IsolationResult& first = results.front();
  table.baseline = StyleRow{"non-isolated", first.power_before_mw,   0.0,
                            first.area_before_um2,  0.0, first.slack_before_ns, 0.0, 0};
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const IsolationResult& res = results[i];
    StyleRow row;
    row.label = flows[i].label;
    row.power_mw = res.power_after_mw;
    row.power_red_pct = res.power_reduction_pct();
    row.area_um2 = res.area_after_um2;
    row.area_inc_pct = res.area_increase_pct();
    row.slack_ns = res.slack_after_ns;
    row.slack_red_pct = res.slack_reduction_pct();
    row.modules_isolated = res.records.size();
    for (const IterationLog& log : res.iterations) {
      row.power_trajectory_mw.push_back(log.total_power_mw);
    }
    table.rows.push_back(row);
  }
  return table;
}

inline void print_row(const StyleRow& r, bool baseline) {
  if (baseline) {
    std::printf("  %-14s %8.3f      n/a %10.0f      n/a %7.2f      n/a\n", r.label.c_str(),
                r.power_mw, r.area_um2, r.slack_ns);
  } else {
    std::printf("  %-14s %8.3f %7.2f%% %10.0f %7.2f%% %7.2f %7.2f%%   (%zu modules)\n",
                r.label.c_str(), r.power_mw, r.power_red_pct, r.area_um2, r.area_inc_pct,
                r.slack_ns, r.slack_red_pct, r.modules_isolated);
  }
}

inline void print_table(const std::string& title, const TableResult& table) {
  std::printf("%s\n", title.c_str());
  std::printf("  %-14s %8s %8s %10s %8s %7s %8s\n", "", "Power", "%red", "Area[um2]", "%inc",
              "Slack", "%red");
  print_row(table.baseline, true);
  for (const StyleRow& r : table.rows) print_row(r, false);
}

/// Versioned envelope stamped into every BENCH_*.json artifact
/// (schema opiso.bench/v1): which payload schema the tables follow,
/// which opiso build produced them (git describe, baked in at
/// configure time) and on what host architecture. CI perf gates pin
/// payload_schema/host_arch so a baseline from another schema
/// generation or machine class is rejected instead of silently
/// compared; opiso_version is informational (it changes every commit).
inline obs::JsonValue bench_envelope(const std::string& payload_schema) {
  obs::JsonValue env = obs::JsonValue::object();
  env["schema"] = "opiso.bench/v1";
  env["payload_schema"] = payload_schema;
#ifdef OPISO_GIT_DESCRIBE
  env["opiso_version"] = OPISO_GIT_DESCRIBE;
#else
  env["opiso_version"] = "unknown";
#endif
#ifdef OPISO_HOST_ARCH
  env["host_arch"] = OPISO_HOST_ARCH;
#else
  env["host_arch"] = "unknown";
#endif
  return env;
}

inline obs::JsonValue row_to_json(const StyleRow& r) {
  obs::JsonValue row = obs::JsonValue::object();
  row["label"] = r.label;
  row["power_mw"] = r.power_mw;
  row["power_reduction_pct"] = r.power_red_pct;
  row["area_um2"] = r.area_um2;
  row["area_increase_pct"] = r.area_inc_pct;
  row["slack_ns"] = r.slack_ns;
  row["slack_reduction_pct"] = r.slack_red_pct;
  row["modules_isolated"] = r.modules_isolated;
  obs::JsonValue traj = obs::JsonValue::array();
  for (double p : r.power_trajectory_mw) traj.push_back(p);
  row["power_trajectory_mw"] = std::move(traj);
  return row;
}

/// Write BENCH_<name>.json next to the table output (see header
/// comment for the destination/disable convention).
inline void emit_json(const std::string& name, const TableResult& table) {
  std::string dir = ".";
  if (const char* env = std::getenv("OPISO_BENCH_JSON_DIR")) {
    if (env[0] == '\0') return;  // explicitly disabled
    dir = env;
  }
  const std::string path = dir + "/BENCH_" + name + ".json";
  obs::JsonValue doc = obs::JsonValue::object();
  doc["schema"] = "opiso.bench_table/v1";
  doc["envelope"] = bench_envelope("opiso.bench_table/v1");
  doc["bench"] = name;
  doc["baseline"] = row_to_json(table.baseline);
  obs::JsonValue rows = obs::JsonValue::array();
  for (const StyleRow& r : table.rows) rows.push_back(row_to_json(r));
  doc["rows"] = std::move(rows);
  doc["metrics"] = obs::metrics().snapshot();
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  doc.write(os, 1);
  os << '\n';
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace opiso::bench
