#pragma once
// Shared harness for the table benchmarks: runs the full isolation flow
// for every isolation style on one design and prints the paper's table
// layout (power / %reduction / area / %increase / slack / %reduction).

#include <cstdio>
#include <string>
#include <vector>

#include "isolation/algorithm.hpp"

namespace opiso::bench {

struct StyleRow {
  std::string label;
  double power_mw = 0.0;
  double power_red_pct = 0.0;  // vs non-isolated
  double area_um2 = 0.0;
  double area_inc_pct = 0.0;
  double slack_ns = 0.0;
  double slack_red_pct = 0.0;
  std::size_t modules_isolated = 0;
};

struct TableResult {
  StyleRow baseline;  ///< non-isolated
  std::vector<StyleRow> rows;
};

/// Runs the Algorithm-1 flow once per style (plus the per-candidate
/// MIXED style extension) and assembles the table.
inline TableResult run_style_table(const Netlist& design, const StimulusFactory& stimuli,
                                   IsolationOptions opt, bool include_mixed = true) {
  TableResult table;
  bool have_baseline = false;
  auto add_row = [&](const std::string& label, const IsolationResult& res) {
    if (!have_baseline) {
      table.baseline = StyleRow{"non-isolated", res.power_before_mw,   0.0,
                                res.area_before_um2,  0.0, res.slack_before_ns, 0.0, 0};
      have_baseline = true;
    }
    StyleRow row;
    row.label = label;
    row.power_mw = res.power_after_mw;
    row.power_red_pct = res.power_reduction_pct();
    row.area_um2 = res.area_after_um2;
    row.area_inc_pct = res.area_increase_pct();
    row.slack_ns = res.slack_after_ns;
    row.slack_red_pct = res.slack_reduction_pct();
    row.modules_isolated = res.records.size();
    table.rows.push_back(row);
  };
  for (IsolationStyle style :
       {IsolationStyle::And, IsolationStyle::Or, IsolationStyle::Latch}) {
    opt.style = style;
    opt.choose_style_per_candidate = false;
    add_row(std::string(isolation_style_name(style)) + "-isolated",
            run_operand_isolation(design, stimuli, opt));
  }
  if (include_mixed) {
    opt.choose_style_per_candidate = true;
    add_row("MIX-isolated", run_operand_isolation(design, stimuli, opt));
  }
  return table;
}

inline void print_row(const StyleRow& r, bool baseline) {
  if (baseline) {
    std::printf("  %-14s %8.3f      n/a %10.0f      n/a %7.2f      n/a\n", r.label.c_str(),
                r.power_mw, r.area_um2, r.slack_ns);
  } else {
    std::printf("  %-14s %8.3f %7.2f%% %10.0f %7.2f%% %7.2f %7.2f%%   (%zu modules)\n",
                r.label.c_str(), r.power_mw, r.power_red_pct, r.area_um2, r.area_inc_pct,
                r.slack_ns, r.slack_red_pct, r.modules_isolated);
  }
}

inline void print_table(const std::string& title, const TableResult& table) {
  std::printf("%s\n", title.c_str());
  std::printf("  %-14s %8s %8s %10s %8s %7s %8s\n", "", "Power", "%red", "Area[um2]", "%inc",
              "Slack", "%red");
  print_row(table.baseline, true);
  for (const StyleRow& r : table.rows) print_row(r, false);
}

}  // namespace opiso::bench
