// Reproduces Table 1 (design1): power / area / slack for the
// non-isolated design vs AND-, OR- and LATCH-isolated versions under a
// representative stimulus (activation signal mostly idle).
//
// As a preamble it reproduces the Sec.-3 derivation on the Fig.-1
// example — the two activation functions the paper prints.
//
// Paper shape to match (Sec. 6, Table 1): double-digit power reductions
// for all three styles; combinational isolation >= latch isolation; area
// overhead small for AND/OR and several-fold larger for LAT.

#include <cstdio>

#include "bench_util.hpp"
#include "designs/designs.hpp"
#include "isolation/activation.hpp"

namespace {

void print_fig1_preamble() {
  using namespace opiso;
  Netlist nl = make_fig1(8);
  ExprPool pool;
  NetVarMap vars;
  const ActivationAnalysis aa = derive_activation(nl, pool, vars);
  const Fig1Nets f = fig1_nets(nl);
  std::printf("Fig. 1/2 reproduction — derived activation signals:\n");
  std::printf("  AS_a0 = %s\n",
              activation_to_string(nl, pool, vars, aa.activation_of(nl, f.a0)).c_str());
  std::printf("  AS_a1 = %s\n\n",
              activation_to_string(nl, pool, vars, aa.activation_of(nl, f.a1)).c_str());
}

}  // namespace

int main() {
  using namespace opiso;
  print_fig1_preamble();

  // Representative stimulus: the PI-controlled activation signal is
  // high ~25% of the time; steering/select statistics are mixed.
  const StimulusFactory stimuli = [] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(1001));
    comp->route("act", std::make_unique<ControlledBitStimulus>(0.25, 0.2, 1002));
    comp->route("sel", std::make_unique<ControlledBitStimulus>(0.5, 0.4, 1003));
    comp->route("g1", std::make_unique<ControlledBitStimulus>(0.5, 0.3, 1004));
    comp->route("g2", std::make_unique<ControlledBitStimulus>(0.5, 0.3, 1005));
    return comp;
  };

  IsolationOptions opt;
  opt.sim_cycles = 16384;
  opt.omega_p = 1.0;
  opt.omega_a = 0.05;

  const auto table = bench::run_style_table(make_design1(8), stimuli, opt);
  bench::print_table("Table 1 — design1 (act: Pr[1]=0.25, Tr=0.20):", table);
  bench::emit_json("table1", table);
  std::printf(
      "\nPaper shape (Table 1): AND > LAT > OR reductions, all double-digit;"
      "\n             LAT area overhead a multiple of AND/OR overhead."
      "\nMIX row: per-candidate style choice (library extension).\n");
  return 0;
}
