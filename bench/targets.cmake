# One binary per reproduced table/figure (see DESIGN.md experiment index).
# All binaries land in ${CMAKE_BINARY_DIR}/bench with nothing else, so
# `for b in build/bench/*; do $b; done` runs the full evaluation.
set(OPISO_BENCH_LIBS opiso_isolation opiso_baseline opiso_designs opiso_lower opiso_obs)

function(opiso_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE ${OPISO_BENCH_LIBS} ${ARGN})
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/src ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

opiso_add_bench(bench_table1)
opiso_add_bench(bench_table2)
opiso_add_bench(bench_activation_sweep)
opiso_add_bench(bench_ablation)
opiso_add_bench(bench_model_accuracy)
opiso_add_bench(bench_baselines)
opiso_add_bench(bench_power_models opiso_lower)
opiso_add_bench(bench_scaling benchmark::benchmark)
