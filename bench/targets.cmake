# One binary per reproduced table/figure (see DESIGN.md experiment index).
# All binaries land in ${CMAKE_BINARY_DIR}/bench with nothing else, so
# `for b in build/bench/*; do $b; done` runs the full evaluation.
set(OPISO_BENCH_LIBS opiso_isolation opiso_baseline opiso_designs opiso_lower opiso_obs
    opiso_sweep opiso_util)

# Configure-time provenance for the opiso.bench/v1 envelope every
# BENCH_*.json carries: which build produced the numbers, on what
# architecture. Falls back to "unknown" outside a git checkout.
execute_process(COMMAND git describe --always --dirty
                WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
                OUTPUT_VARIABLE OPISO_GIT_DESCRIBE
                OUTPUT_STRIP_TRAILING_WHITESPACE
                ERROR_QUIET
                RESULT_VARIABLE OPISO_GIT_DESCRIBE_RC)
if(NOT OPISO_GIT_DESCRIBE_RC EQUAL 0 OR OPISO_GIT_DESCRIBE STREQUAL "")
  set(OPISO_GIT_DESCRIBE "unknown")
endif()

function(opiso_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE ${OPISO_BENCH_LIBS} ${ARGN})
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/src ${CMAKE_SOURCE_DIR}/bench)
  target_compile_definitions(${name} PRIVATE
      OPISO_GIT_DESCRIBE="${OPISO_GIT_DESCRIBE}"
      OPISO_HOST_ARCH="${CMAKE_SYSTEM_PROCESSOR}")
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

opiso_add_bench(bench_table1)
opiso_add_bench(bench_table2)
opiso_add_bench(bench_activation_sweep)
opiso_add_bench(bench_ablation)
opiso_add_bench(bench_model_accuracy)
opiso_add_bench(bench_baselines)
opiso_add_bench(bench_power_models opiso_lower)
opiso_add_bench(bench_scaling benchmark::benchmark)
opiso_add_bench(bench_sweep)
opiso_add_bench(bench_confidence opiso_frontend)
target_compile_definitions(bench_confidence PRIVATE
    OPISO_RTL_DIR="${CMAKE_SOURCE_DIR}/designs_rtl")
opiso_add_bench(bench_rewrite opiso_frontend opiso_opt)
target_compile_definitions(bench_rewrite PRIVATE
    OPISO_RTL_DIR="${CMAKE_SOURCE_DIR}/designs_rtl")

# Bench smoke: the two table benches run in well under a second, so CI
# (and any local `ctest -L bench-smoke`) regenerates BENCH_table{1,2}.json
# and gates the reproduced savings against the committed expected
# subsets via `opiso report diff` (tolerances in ci/bench_tolerances.json).
add_test(NAME bench_table_tolerances
         COMMAND sh -c "mkdir -p ${CMAKE_BINARY_DIR}/bench_json && \
OPISO_BENCH_JSON_DIR=${CMAKE_BINARY_DIR}/bench_json $<TARGET_FILE:bench_table1> && \
OPISO_BENCH_JSON_DIR=${CMAKE_BINARY_DIR}/bench_json $<TARGET_FILE:bench_table2> && \
$<TARGET_FILE:opiso_cli> report diff ${CMAKE_SOURCE_DIR}/ci/golden/BENCH_table1.expected.json \
${CMAKE_BINARY_DIR}/bench_json/BENCH_table1.json \
--tolerances ${CMAKE_SOURCE_DIR}/ci/bench_tolerances.json --subset && \
$<TARGET_FILE:opiso_cli> report diff ${CMAKE_SOURCE_DIR}/ci/golden/BENCH_table2.expected.json \
${CMAKE_BINARY_DIR}/bench_json/BENCH_table2.json \
--tolerances ${CMAKE_SOURCE_DIR}/ci/bench_tolerances.json --subset")
set_tests_properties(bench_table_tolerances PROPERTIES TIMEOUT 300 LABELS bench-smoke)

# Perf-trajectory artifact shape: regenerate BENCH_sweep.json and hold
# its structure (schema, bench set, deterministic lane_cycles work
# measure) to the committed ci/bench_baseline snapshot. Timing fields
# are ignored here — the 10% wall-clock gate runs in the perf-trajectory
# CI job against a rolling same-runner baseline, where the numbers are
# actually comparable.
add_test(NAME bench_sweep_structural
         COMMAND sh -c "mkdir -p ${CMAKE_BINARY_DIR}/bench_json && \
OPISO_BENCH_JSON_DIR=${CMAKE_BINARY_DIR}/bench_json $<TARGET_FILE:bench_sweep> && \
$<TARGET_FILE:opiso_cli> report diff \
${CMAKE_SOURCE_DIR}/ci/bench_baseline/BENCH_sweep.baseline.json \
${CMAKE_BINARY_DIR}/bench_json/BENCH_sweep.json \
--tolerances ${CMAKE_SOURCE_DIR}/ci/bench_baseline/sweep_structural_tolerances.json --subset")
set_tests_properties(bench_sweep_structural PROPERTIES TIMEOUT 300 LABELS bench-smoke)

# Same split for BENCH_rewrite.json: this ctest regenerates it and holds
# the deterministic fields (power figures, module counts, the rewrite
# advantage) to the committed snapshot; wall-clock fields are gated by
# the rolling perf-trajectory CI job. The bench binary itself exits
# nonzero unless rewriting strictly beats isolated-only somewhere, so
# the acceptance inequality is enforced on every run.
add_test(NAME bench_rewrite_structural
         COMMAND sh -c "mkdir -p ${CMAKE_BINARY_DIR}/bench_json && \
OPISO_BENCH_JSON_DIR=${CMAKE_BINARY_DIR}/bench_json $<TARGET_FILE:bench_rewrite> && \
$<TARGET_FILE:opiso_cli> report diff \
${CMAKE_SOURCE_DIR}/ci/bench_baseline/BENCH_rewrite.baseline.json \
${CMAKE_BINARY_DIR}/bench_json/BENCH_rewrite.json \
--tolerances ${CMAKE_SOURCE_DIR}/ci/bench_baseline/rewrite_structural_tolerances.json --subset")
set_tests_properties(bench_rewrite_structural PROPERTIES TIMEOUT 600 LABELS bench-smoke)
