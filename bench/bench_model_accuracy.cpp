// Validates the Sec.-4 estimation model the way the paper justifies it
// ("This has proven to be a good approximation"): for every candidate of
// both designs, compare the model's predicted net savings (primary +
// secondary − overhead) against the measured power delta from actually
// isolating that single candidate.

#include <cmath>
#include <cstdio>

#include "designs/designs.hpp"
#include "isolation/algorithm.hpp"
#include "netlist/traversal.hpp"
#include "power/estimator.hpp"

namespace {

using namespace opiso;

void evaluate_design(const char* title, const Netlist& design, const StimulusFactory& stimuli,
                     std::uint64_t cycles) {
  std::printf("%s\n", title);
  std::printf("  %-10s %12s %12s %9s\n", "candidate", "predicted", "measured", "ratio");

  // Shared measurement of the unmodified design.
  ExprPool pool;
  NetVarMap vars;
  Netlist base = design;
  const ActivationAnalysis aa = derive_activation(base, pool, vars);
  const std::vector<IsolationCandidate> cands =
      identify_candidates(base, combinational_blocks(base), aa, pool, CandidateConfig{});
  MacroPowerModel power;
  SavingsEstimator est(base, pool, vars, cands, power);
  Simulator sim(base, &pool, &vars);
  est.register_probes(sim);
  auto stim = stimuli();
  sim.run(*stim, cycles);
  const PowerEstimator pe(power);
  const double before = pe.estimate(base, sim.stats()).total_mw;

  double sum_abs_err = 0.0;
  int n = 0;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (!isolation_is_legal(base, pool, vars, cands[i].cell, cands[i].activation)) continue;
    const double predicted = est.primary_savings_mw(i, sim.stats(), PrimaryModel::Refined) +
                             est.secondary_savings_mw(i, sim.stats()) -
                             est.overhead_mw(i, sim.stats(), IsolationStyle::And);

    // Isolate only this candidate on a fresh copy and re-measure.
    Netlist variant = design;
    ExprPool pool2;
    NetVarMap vars2;
    const ActivationAnalysis aa2 = derive_activation(variant, pool2, vars2);
    const CellId cell = cands[i].cell;  // ids are stable across the copy
    (void)isolate_module(variant, pool2, vars2, cell, aa2.activation_of(variant, cell),
                         IsolationStyle::And);
    Simulator sim2(variant);
    auto stim2 = stimuli();
    sim2.run(*stim2, cycles);
    const double after = pe.estimate(variant, sim2.stats()).total_mw;
    const double measured = before - after;

    const double ratio = std::abs(measured) > 1e-9 ? predicted / measured : 0.0;
    std::printf("  %-10s %9.4f mW %9.4f mW %9.2f\n",
                base.cell(cell).name.c_str(), predicted, measured, ratio);
    sum_abs_err += std::abs(predicted - measured);
    ++n;
  }
  if (n > 0) std::printf("  mean |error| = %.4f mW over %d candidates\n\n", sum_abs_err / n, n);
}

}  // namespace

int main() {
  const StimulusFactory stim1 = [] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(5001));
    comp->route("act", std::make_unique<ControlledBitStimulus>(0.25, 0.2, 5002));
    comp->route("g1", std::make_unique<ControlledBitStimulus>(0.5, 0.3, 5003));
    comp->route("g2", std::make_unique<ControlledBitStimulus>(0.5, 0.3, 5004));
    return comp;
  };
  const StimulusFactory stim2 = [] {
    return std::make_unique<UniformStimulus>(5005);
  };

  std::printf("Model accuracy — predicted (Sec. 4) vs measured per-candidate savings\n\n");
  evaluate_design("design1:", make_design1(8), stim1, 16384);
  evaluate_design("design2:", make_design2(8, 2), stim2, 16384);
  std::printf("Paper claim: the estimate is 'a good approximation' — ratios near 1.\n");
  return 0;
}
