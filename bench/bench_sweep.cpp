// Perf-trajectory bench: wall-clock and throughput of the sweep and
// isolation flows, plus the incremental-vs-full re-simulation speedup.
//
// Emits BENCH_sweep.json (schema opiso.bench_sweep/v1) for the CI
// perf-trajectory gate: a fresh run is diffed against the rolling
// baseline (actions/cache) or the committed ci/bench_baseline snapshot
// using the one-sided rules in ci/bench_baseline/sweep_tolerances.json
// — wall_ms may not rise more than 10%, lane_cycles_per_sec may not
// fall more than 10%, and movement in the improving direction is
// always accepted. Deterministic fields (lane_cycles, iterations)
// are gated exactly, so a workload change that silently shrinks the
// measured work cannot masquerade as a speedup.
//
// Each timing is best-of-kReps to shave scheduler noise; the simulated
// work itself is deterministic (fixed seeds), so lane_cycles is stable
// across runs and machines.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "designs/designs.hpp"
#include "isolation/algorithm.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace opiso;

constexpr int kReps = 3;

struct BenchRow {
  std::string name;
  double wall_ms = 0.0;                  ///< best of kReps
  std::uint64_t lane_cycles = 0;         ///< deterministic work measure
  double lane_cycles_per_sec = 0.0;      ///< lane_cycles / best wall time
};

/// Best-of-kReps wall time of `body`; `body` returns the lane-cycle
/// count of one repetition (identical across reps by construction).
BenchRow time_bench(const std::string& name,
                    const std::function<std::uint64_t()>& body) {
  BenchRow row;
  row.name = name;
  double best_ms = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    row.lane_cycles = body();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < best_ms) best_ms = ms;
  }
  row.wall_ms = best_ms;
  row.lane_cycles_per_sec =
      best_ms > 0.0 ? static_cast<double>(row.lane_cycles) / (best_ms / 1e3) : 0.0;
  std::printf("  %-24s %10.2f ms  %12llu lane-cycles  %12.0f lc/s\n", name.c_str(),
              row.wall_ms, static_cast<unsigned long long>(row.lane_cycles),
              row.lane_cycles_per_sec);
  return row;
}

std::uint64_t run_sweep_once(SimEngineKind engine, unsigned lanes, std::uint64_t cycles) {
  std::vector<SweepTask> tasks;
  for (std::uint64_t seed : {1ull, 2ull}) {
    SweepTask t;
    t.design = "design1";
    t.make_design = [] { return make_design1(8); };
    t.seed = seed;
    t.cycles = cycles;
    t.lanes = lanes;
    t.engine = engine;
    tasks.push_back(t);
    t.design = "design2";
    t.make_design = [] { return make_design2(8, 4); };
    tasks.push_back(t);
  }
  SweepRunner runner(1);
  std::uint64_t total = 0;
  for (const SweepResult& r : runner.run(tasks)) total += r.lane_cycles;
  return total;
}

/// Deep always-on multiplier pipeline whose only isolation candidate
/// sits at the tail (the one register with a non-constant enable).
/// This is the incremental engine's win case: the committed bank's
/// dirty cone is a handful of cells, so every re-measurement after
/// iteration 0 replays the pipeline bulk from the frame tape. On the
/// lane-symmetric designs the per-block commits dirty the whole
/// netlist and incremental is break-even — tracked honestly by the
/// speedup metric, gated one-sided below.
Netlist make_tail_pipeline(unsigned stages, unsigned width) {
  Netlist nl;
  const NetId one = nl.add_const("one", 1, 1);
  const NetId a = nl.add_input("a", width);
  const NetId b = nl.add_input("b", width);
  const NetId g = nl.add_input("g", 1);
  NetId x = a;
  for (unsigned s = 0; s < stages; ++s) {
    const NetId m = nl.add_binop(CellKind::Mul, "mul" + std::to_string(s), x, b);
    const NetId sum = nl.add_binop(CellKind::Add, "add" + std::to_string(s), m, a);
    x = nl.add_reg("r" + std::to_string(s), sum, one);
  }
  const NetId mt = nl.add_binop(CellKind::Mul, "mul_tail", x, b);
  const NetId r = nl.add_reg("reg_tail", mt, g);
  nl.add_output("out", r);
  nl.add_output("mid", x);
  nl.validate();
  return nl;
}

/// One full Algorithm-1 flow on the tail pipeline; returns the
/// lane-cycles simulated across all measurement rounds.
std::uint64_t run_isolate_once(bool incremental) {
  const Netlist nl = make_tail_pipeline(16, 8);
  IsolationOptions opt;
  opt.sim_engine = SimEngineKind::Parallel;
  opt.sim_lanes = 64;
  opt.sim_cycles = 64 * 2048;
  opt.warmup_cycles = 64 * 8;
  opt.incremental = incremental;
  opt.lane_stimuli = [](unsigned lane) {
    return std::make_unique<UniformStimulus>(sweep_lane_seed(7, lane));
  };
  const IsolationResult res = run_operand_isolation(
      nl, [] { return std::make_unique<UniformStimulus>(7); }, opt);
  return (res.iterations.size() + 1) * opt.sim_cycles;
}

obs::JsonValue row_to_json(const BenchRow& r) {
  obs::JsonValue row = obs::JsonValue::object();
  row["wall_ms"] = r.wall_ms;
  row["lane_cycles"] = r.lane_cycles;
  row["lane_cycles_per_sec"] = r.lane_cycles_per_sec;
  return row;
}

/// Same destination/disable convention as bench_util.hpp emit_json.
void emit(const std::vector<BenchRow>& rows, double incremental_speedup) {
  std::string dir = ".";
  if (const char* env = std::getenv("OPISO_BENCH_JSON_DIR")) {
    if (env[0] == '\0') return;
    dir = env;
  }
  const std::string path = dir + "/BENCH_sweep.json";
  obs::JsonValue doc = obs::JsonValue::object();
  doc["schema"] = "opiso.bench_sweep/v1";
  doc["envelope"] = bench::bench_envelope("opiso.bench_sweep/v1");
  doc["bench"] = "sweep";
  obs::JsonValue benches = obs::JsonValue::object();
  for (const BenchRow& r : rows) benches[r.name] = row_to_json(r);
  doc["benches"] = std::move(benches);
  obs::JsonValue derived = obs::JsonValue::object();
  derived["incremental_speedup"] = incremental_speedup;
  doc["derived"] = std::move(derived);
  doc["metrics"] = obs::metrics().snapshot();
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  doc.write(os, 1);
  os << '\n';
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  std::printf("Sweep / isolation perf trajectory (best of %d reps):\n", kReps);
  std::vector<BenchRow> rows;
  rows.push_back(time_bench("sweep_parallel",
                            [] { return run_sweep_once(SimEngineKind::Parallel, 64, 16384); }));
  rows.push_back(time_bench("sweep_scalar",
                            [] { return run_sweep_once(SimEngineKind::Scalar, 4, 16384); }));
  const BenchRow full = time_bench("isolate_full", [] { return run_isolate_once(false); });
  const BenchRow incr = time_bench("isolate_incremental", [] { return run_isolate_once(true); });
  rows.push_back(full);
  rows.push_back(incr);
  if (full.lane_cycles != incr.lane_cycles) {
    std::fprintf(stderr,
                 "bench: incremental flow simulated %llu lane-cycles, full flow %llu — "
                 "the two paths diverged\n",
                 static_cast<unsigned long long>(incr.lane_cycles),
                 static_cast<unsigned long long>(full.lane_cycles));
    return 1;
  }
  const double speedup = incr.wall_ms > 0.0 ? full.wall_ms / incr.wall_ms : 0.0;
  std::printf("  incremental speedup: %.2fx\n", speedup);
  emit(rows, speedup);
  return 0;
}
