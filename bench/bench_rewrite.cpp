// Rewrite-ahead-of-isolation bench: does equality-saturation datapath
// rewriting buy net power beyond what operand isolation alone gets?
//
// For design1, design2 and fir4 the full Algorithm-1 flow runs twice —
// isolated-only and rewritten-then-isolated — under identical stimuli
// and cost weights. Both flows are measured against the same baseline
// (the original design's power under the isolate discipline), so the
// two net-reduction figures are directly comparable. The binary fails
// unless at least one design shows a strictly greater net reduction
// with rewriting on: that inequality is the acceptance criterion the
// rewrite engine exists to meet, and regressing it should break the
// build, not just bend a curve.
//
// Emitted as BENCH_rewrite.json (schema opiso.bench_rewrite/v1 inside
// the opiso.bench/v1 envelope). Wall-clock fields feed the rolling
// perf-trajectory gate; everything else is deterministic (fixed seeds,
// scalar engine) and gated structurally against the committed
// ci/bench_baseline snapshot.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "designs/designs.hpp"
#include "frontend/rtl_parser.hpp"
#include "isolation/algorithm.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/stimulus.hpp"

namespace {

using namespace opiso;

struct Subject {
  std::string name;
  Netlist netlist;
  StimulusFactory stimuli;
  IsolationOptions options;
};

/// Same subjects (designs, stimuli, weights) as bench_confidence, so
/// the numbers line up with the table reproductions.
Subject make_subject(const std::string& name) {
  Subject s;
  s.name = name;
  if (name == "design1") {
    s.netlist = make_design1(8);
    s.stimuli = [] {
      auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(1001));
      comp->route("act", std::make_unique<ControlledBitStimulus>(0.25, 0.2, 1002));
      comp->route("sel", std::make_unique<ControlledBitStimulus>(0.5, 0.4, 1003));
      comp->route("g1", std::make_unique<ControlledBitStimulus>(0.5, 0.3, 1004));
      comp->route("g2", std::make_unique<ControlledBitStimulus>(0.5, 0.3, 1005));
      return comp;
    };
    s.options.omega_a = 0.05;
  } else if (name == "design2") {
    s.netlist = make_design2(8, 2);
    s.stimuli = [] {
      auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(2001));
      comp->route("start", std::make_unique<ControlledBitStimulus>(0.45, 0.2, 2002));
      return comp;
    };
    s.options.omega_a = 0.05;
  } else if (name == "fir4") {
#ifdef OPISO_RTL_DIR
    s.netlist = parse_rtl_file(std::string(OPISO_RTL_DIR) + "/fir4.rtl");
#else
    std::fprintf(stderr, "bench_rewrite: fir4 needs OPISO_RTL_DIR\n");
    std::exit(1);
#endif
    s.stimuli = [] { return std::make_unique<UniformStimulus>(1); };
  } else {
    std::fprintf(stderr, "bench_rewrite: unknown design %s\n", name.c_str());
    std::exit(1);
  }
  s.options.sim_cycles = 4096;
  s.options.confidence.enabled = false;
  return s;
}

struct FlowOutcome {
  IsolationResult result;
  double wall_ms = 0.0;
};

FlowOutcome run_flow(const Subject& s, bool rewrite) {
  IsolationOptions opt = s.options;
  opt.rewrite = rewrite;
  const auto t0 = std::chrono::steady_clock::now();
  FlowOutcome out{run_operand_isolation(s.netlist, s.stimuli, opt), 0.0};
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

obs::JsonValue flow_json(const FlowOutcome& f, double baseline_mw) {
  obs::JsonValue o = obs::JsonValue::object();
  o["power_after_mw"] = f.result.power_after_mw;
  o["net_reduction_pct"] =
      baseline_mw > 0 ? 100.0 * (baseline_mw - f.result.power_after_mw) / baseline_mw : 0.0;
  o["modules_isolated"] = f.result.records.size();
  o["wall_ms"] = f.wall_ms;
  return o;
}

void emit(obs::JsonValue designs, obs::JsonValue derived) {
  std::string dir = ".";
  if (const char* env = std::getenv("OPISO_BENCH_JSON_DIR")) {
    if (env[0] == '\0') return;
    dir = env;
  }
  const std::string path = dir + "/BENCH_rewrite.json";
  obs::JsonValue doc = obs::JsonValue::object();
  doc["schema"] = "opiso.bench_rewrite/v1";
  doc["envelope"] = bench::bench_envelope("opiso.bench_rewrite/v1");
  doc["bench"] = "rewrite";
  doc["designs"] = std::move(designs);
  doc["derived"] = std::move(derived);
  doc["metrics"] = obs::metrics().snapshot();
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  doc.write(os, 1);
  os << '\n';
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  std::printf("Net power reduction, isolated-only vs rewritten-then-isolated:\n");
  obs::JsonValue designs = obs::JsonValue::object();
  std::string best_design;
  double best_advantage = 0.0;
  for (const char* name : {"design1", "design2", "fir4"}) {
    const Subject s = make_subject(name);
    const FlowOutcome iso = run_flow(s, /*rewrite=*/false);
    const FlowOutcome rw = run_flow(s, /*rewrite=*/true);
    // Both flows share one baseline: the original design's measured
    // power (the rewrite flow's own power_before is post-rewrite).
    const double baseline_mw = iso.result.power_before_mw;
    obs::JsonValue d = obs::JsonValue::object();
    d["baseline_power_mw"] = baseline_mw;
    d["isolated"] = flow_json(iso, baseline_mw);
    d["rewritten_isolated"] = flow_json(rw, baseline_mw);
    if (!rw.result.rewrite.is_null()) {
      obs::JsonValue r = obs::JsonValue::object();
      r["rewritten"] = rw.result.rewrite.at("rewritten").as_bool();
      r["verified"] = rw.result.rewrite.at("verified").as_bool();
      r["cells_before"] = rw.result.rewrite.at("cells").at("before");
      r["cells_after"] = rw.result.rewrite.at("cells").at("after");
      d["rewrite"] = std::move(r);
    }
    const double red_iso = d.at("isolated").at("net_reduction_pct").as_number();
    const double red_rw = d.at("rewritten_isolated").at("net_reduction_pct").as_number();
    const double advantage = red_rw - red_iso;
    d["advantage_pct"] = advantage;
    std::printf("  %-8s baseline %7.3f mW | isolated %6.2f%% | rewritten+isolated %6.2f%% "
                "| advantage %+5.2f pp\n",
                name, baseline_mw, red_iso, red_rw, advantage);
    if (advantage > best_advantage) {
      best_advantage = advantage;
      best_design = name;
    }
    designs[name] = std::move(d);
  }

  obs::JsonValue derived = obs::JsonValue::object();
  derived["best_advantage_design"] = best_design;
  derived["best_advantage_pct"] = best_advantage;
  emit(std::move(designs), std::move(derived));

  // The acceptance gate: rewriting must beat isolated-only somewhere,
  // strictly. A rewrite engine that never changes the outcome is dead
  // weight and this bench is its tombstone.
  if (best_advantage <= 0.0) {
    std::fprintf(stderr,
                 "bench_rewrite: FAIL — no design shows a net-reduction advantage "
                 "from rewriting (best %+f pp)\n",
                 best_advantage);
    return 1;
  }
  std::printf("  -> best advantage: %s (%+.2f pp)\n", best_design.c_str(), best_advantage);
  return 0;
}
