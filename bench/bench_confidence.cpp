// Convergence bench: how much simulation is enough?
//
// Two experiments, both fully deterministic (fixed seeds, no timing
// fields), emitted as BENCH_confidence.json (schema
// opiso.bench_confidence/v1 inside the opiso.bench/v1 envelope):
//
//  1. CI-vs-cycles curves — for design1, design2 and fir4, measure the
//     design-power 95% batch-means confidence interval at a ladder of
//     cycle counts. The half-width shrinks like 1/sqrt(cycles); the
//     curve shows where it crosses 1% of the mean, i.e. the cheapest
//     run length whose power figure deserves two significant digits.
//
//  2. Table 1/2 ranking stabilization — rerun the full Algorithm-1
//     flow per isolation style (AND / OR / latch) at each ladder rung
//     and record the style ranking by power reduction. The reported
//     number is the smallest cycle count from which the ranking never
//     changes again (matches the longest run), plus the rung where the
//     ranking is *resolved*: adjacent styles' power CIs stop
//     overlapping, so the order is statistically meaningful and not
//     a seed artifact. This quantifies a question the paper leaves
//     open: its tables fix one simulation length and report a
//     latch-vs-AND/OR ordering without saying how much stimulus that
//     ordering needs to be trustworthy.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "designs/designs.hpp"
#include "frontend/rtl_parser.hpp"
#include "isolation/algorithm.hpp"
#include "obs/confidence.hpp"
#include "power/estimator.hpp"
#include "sim/simulator.hpp"
#include "sim/stimulus.hpp"

namespace {

using namespace opiso;

constexpr std::uint32_t kBatchFrames = 16;
constexpr double kLevel = 0.95;

const std::uint64_t kCurveLadder[] = {1024, 2048, 4096, 8192, 16384, 32768, 65536};
const std::uint64_t kRankLadder[] = {512, 1024, 2048, 4096, 8192, 16384, 32768};

/// One experiment subject: the design plus the *same* stimulus and cost
/// weights its table reproduction uses (bench_table1/bench_table2), so
/// the convergence numbers answer "how long do Tables 1/2 need", not
/// "how long does some other testbench need". fir4 has no table; it
/// runs under the plain isolate-discipline stimulus.
struct Subject {
  std::string name;
  Netlist netlist;
  StimulusFactory stimuli;
  IsolationOptions options;
};

Subject make_subject(const std::string& name) {
  Subject s;
  s.name = name;
  if (name == "design1") {
    s.netlist = make_design1(8);
    s.stimuli = [] {
      auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(1001));
      comp->route("act", std::make_unique<ControlledBitStimulus>(0.25, 0.2, 1002));
      comp->route("sel", std::make_unique<ControlledBitStimulus>(0.5, 0.4, 1003));
      comp->route("g1", std::make_unique<ControlledBitStimulus>(0.5, 0.3, 1004));
      comp->route("g2", std::make_unique<ControlledBitStimulus>(0.5, 0.3, 1005));
      return comp;
    };
    s.options.omega_p = 1.0;
    s.options.omega_a = 0.05;
  } else if (name == "design2") {
    s.netlist = make_design2(8, 2);
    s.stimuli = [] {
      auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(2001));
      comp->route("start", std::make_unique<ControlledBitStimulus>(0.45, 0.2, 2002));
      return comp;
    };
    s.options.omega_p = 1.0;
    s.options.omega_a = 0.05;
  } else if (name == "fir4") {
#ifdef OPISO_RTL_DIR
    s.netlist = parse_rtl_file(std::string(OPISO_RTL_DIR) + "/fir4.rtl");
#else
    std::fprintf(stderr, "bench_confidence: fir4 needs OPISO_RTL_DIR\n");
    std::exit(1);
#endif
    s.stimuli = [] { return std::make_unique<UniformStimulus>(1); };
  } else {
    std::fprintf(stderr, "bench_confidence: unknown design %s\n", name.c_str());
    std::exit(1);
  }
  return s;
}

struct CurvePoint {
  std::uint64_t cycles = 0;
  double mean_mw = 0.0;
  double halfwidth_mw = 0.0;
  std::uint64_t batches = 0;
};

/// One measurement under the isolate discipline (scalar engine, the
/// subject's own stimulus) with batch statistics on.
CurvePoint measure_point(const Subject& s, std::uint64_t cycles) {
  Simulator sim(s.netlist);
  sim.enable_batch_stats(kBatchFrames);
  const std::unique_ptr<Stimulus> stim = s.stimuli();
  sim.run(*stim, cycles);
  const ActivityStats stats = sim.stats();
  const std::vector<double> weights = PowerEstimator().net_toggle_weights(s.netlist);
  const obs::SeriesInterval iv =
      obs::weighted_interval(stats.net_batches, weights, /*lanes=*/1, kLevel);
  return {cycles, iv.mean, iv.halfwidth, iv.batches};
}

obs::JsonValue curve_json(const Subject& s, std::uint64_t* cycles_to_1pct) {
  std::printf("  %s:\n", s.name.c_str());
  obs::JsonValue points = obs::JsonValue::array();
  *cycles_to_1pct = 0;
  for (std::uint64_t cycles : kCurveLadder) {
    const CurvePoint p = measure_point(s, cycles);
    const double rel_pct = p.mean_mw > 0.0 ? 100.0 * p.halfwidth_mw / p.mean_mw : 0.0;
    if (*cycles_to_1pct == 0 && rel_pct <= 1.0) *cycles_to_1pct = cycles;
    std::printf("    %7llu cycles: %8.4f mW +/- %.4f (%.2f%%, %llu batches)\n",
                static_cast<unsigned long long>(p.cycles), p.mean_mw, p.halfwidth_mw, rel_pct,
                static_cast<unsigned long long>(p.batches));
    obs::JsonValue row = obs::JsonValue::object();
    row["cycles"] = p.cycles;
    row["power_mean_mw"] = p.mean_mw;
    row["ci_halfwidth_mw"] = p.halfwidth_mw;
    row["ci_rel_pct"] = rel_pct;
    row["batches"] = p.batches;
    points.push_back(std::move(row));
  }
  obs::JsonValue curve = obs::JsonValue::object();
  curve["points"] = std::move(points);
  curve["cycles_to_1pct_ci"] = *cycles_to_1pct;
  return curve;
}

struct StyleOutcome {
  std::string label;
  double power_after_mw = 0.0;
  double reduction_pct = 0.0;
  double ci_halfwidth_mw = 0.0;
};

StyleOutcome run_style(const Subject& s, IsolationStyle style, std::uint64_t cycles) {
  IsolationOptions opt = s.options;
  opt.style = style;
  opt.sim_cycles = cycles;
  opt.confidence.enabled = true;
  opt.confidence.batch_frames = kBatchFrames;
  opt.confidence.level = kLevel;
  const IsolationResult res = run_operand_isolation(s.netlist, s.stimuli, opt);
  StyleOutcome out;
  out.label = std::string(isolation_style_name(style));
  out.power_after_mw = res.power_after_mw;
  out.reduction_pct = res.power_reduction_pct();
  if (!res.confidence.is_null()) {
    out.ci_halfwidth_mw = res.confidence.at("power_mw").at("ci_halfwidth_mw").as_number();
  }
  return out;
}

/// Style order at one cycle count, best reduction first. Rendered as
/// "and>latch>or" so orders compare as strings.
std::string ranking_of(const std::vector<StyleOutcome>& styles) {
  std::vector<std::size_t> order(styles.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (styles[a].reduction_pct != styles[b].reduction_pct) {
      return styles[a].reduction_pct > styles[b].reduction_pct;
    }
    return styles[a].label < styles[b].label;
  });
  std::string out;
  for (std::size_t i : order) {
    if (!out.empty()) out += '>';
    out += styles[i].label;
  }
  return out;
}

/// Adjacent styles in the ranking are *resolved* when their power CIs
/// are disjoint: the ordering cannot flip within the intervals.
bool ranking_resolved(std::vector<StyleOutcome> styles) {
  std::sort(styles.begin(), styles.end(), [](const StyleOutcome& a, const StyleOutcome& b) {
    return a.power_after_mw < b.power_after_mw;
  });
  for (std::size_t i = 0; i + 1 < styles.size(); ++i) {
    const double gap = styles[i + 1].power_after_mw - styles[i].power_after_mw;
    if (gap <= styles[i].ci_halfwidth_mw + styles[i + 1].ci_halfwidth_mw) return false;
  }
  return true;
}

obs::JsonValue ranking_json(const Subject& s, std::uint64_t* stabilized_at,
                            std::uint64_t* resolved_at) {
  std::printf("  %s:\n", s.name.c_str());
  std::vector<std::string> orders;
  std::vector<bool> resolved;
  obs::JsonValue rungs = obs::JsonValue::array();
  for (std::uint64_t cycles : kRankLadder) {
    std::vector<StyleOutcome> styles;
    for (IsolationStyle style :
         {IsolationStyle::And, IsolationStyle::Or, IsolationStyle::Latch}) {
      styles.push_back(run_style(s, style, cycles));
    }
    orders.push_back(ranking_of(styles));
    resolved.push_back(ranking_resolved(styles));
    std::printf("    %7llu cycles: %-16s %s\n", static_cast<unsigned long long>(cycles),
                orders.back().c_str(), resolved.back() ? "(CIs disjoint)" : "(CIs overlap)");
    obs::JsonValue rung = obs::JsonValue::object();
    rung["cycles"] = cycles;
    rung["ranking"] = orders.back();
    rung["cis_disjoint"] = static_cast<bool>(resolved.back());
    obs::JsonValue srows = obs::JsonValue::array();
    for (const StyleOutcome& st : styles) {
      obs::JsonValue r = obs::JsonValue::object();
      r["style"] = st.label;
      r["power_after_mw"] = st.power_after_mw;
      r["power_reduction_pct"] = st.reduction_pct;
      r["ci_halfwidth_mw"] = st.ci_halfwidth_mw;
      srows.push_back(std::move(r));
    }
    rung["styles"] = std::move(srows);
    rungs.push_back(std::move(rung));
  }

  // Stabilized: the ranking matches the longest run's from this rung
  // on. Resolved: additionally, every rung from here on has disjoint
  // CIs (0 = never within the ladder).
  const std::string& final_order = orders.back();
  const std::size_t n = orders.size();
  *stabilized_at = 0;
  *resolved_at = 0;
  for (std::size_t i = n; i-- > 0;) {
    if (orders[i] != final_order) break;
    *stabilized_at = kRankLadder[i];
  }
  for (std::size_t i = n; i-- > 0;) {
    if (orders[i] != final_order || !resolved[i]) break;
    *resolved_at = kRankLadder[i];
  }

  obs::JsonValue doc = obs::JsonValue::object();
  doc["rungs"] = std::move(rungs);
  doc["final_ranking"] = final_order;
  doc["stabilized_at_cycles"] = *stabilized_at;
  doc["resolved_at_cycles"] = *resolved_at;
  return doc;
}

void emit(const obs::JsonValue& curves, const obs::JsonValue& rankings) {
  std::string dir = ".";
  if (const char* env = std::getenv("OPISO_BENCH_JSON_DIR")) {
    if (env[0] == '\0') return;
    dir = env;
  }
  const std::string path = dir + "/BENCH_confidence.json";
  obs::JsonValue doc = obs::JsonValue::object();
  doc["schema"] = "opiso.bench_confidence/v1";
  doc["envelope"] = bench::bench_envelope("opiso.bench_confidence/v1");
  doc["bench"] = "confidence";
  doc["confidence_level"] = kLevel;
  doc["batch_frames"] = kBatchFrames;
  doc["curves"] = curves;
  doc["rankings"] = rankings;
  doc["metrics"] = obs::metrics().snapshot();
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  doc.write(os, 1);
  os << '\n';
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  std::printf("Design-power CI half-width vs cycles (%.0f%% batch-means CI):\n", kLevel * 100);
  obs::JsonValue curves = obs::JsonValue::object();
  for (const char* name : {"design1", "design2", "fir4"}) {
    const Subject s = make_subject(name);
    std::uint64_t to_1pct = 0;
    curves[name] = curve_json(s, &to_1pct);
    if (to_1pct != 0) {
      std::printf("    -> 1%% relative CI reached at %llu cycles\n",
                  static_cast<unsigned long long>(to_1pct));
    }
  }

  std::printf("\nTable 1/2 style-ranking stabilization (AND / OR / latch):\n");
  obs::JsonValue rankings = obs::JsonValue::object();
  for (const char* name : {"design1", "design2"}) {
    const Subject s = make_subject(name);
    std::uint64_t stabilized = 0, resolved = 0;
    rankings[name] = ranking_json(s, &stabilized, &resolved);
    if (resolved != 0) {
      std::printf("    -> stable from %llu cycles, CI-resolved from %llu cycles\n",
                  static_cast<unsigned long long>(stabilized),
                  static_cast<unsigned long long>(resolved));
    } else {
      std::printf("    -> stable from %llu cycles, never CI-resolved through %llu cycles\n",
                  static_cast<unsigned long long>(stabilized),
                  static_cast<unsigned long long>(kRankLadder[std::size(kRankLadder) - 1]));
    }
  }

  emit(curves, rankings);
  return 0;
}
