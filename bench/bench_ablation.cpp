// Ablation studies over the algorithm's design choices (DESIGN.md):
//   1. primary-savings model: simple Eq.-1 vs refined Eq.-3 event pairs,
//   2. the cost-function weights ωp/ωa (Sec. 5.1): higher area weight
//      must isolate fewer, larger-payoff modules,
//   3. the h_min acceptance threshold,
//   4. iterative one-per-block isolation vs isolate-everything-at-once
//      (omega/h knobs emulate the greedy-all variant).

#include <cstdio>

#include "designs/designs.hpp"
#include "isolation/algorithm.hpp"

namespace {

opiso::StimulusFactory stimuli() {
  using namespace opiso;
  return [] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(4001));
    comp->route("act", std::make_unique<ControlledBitStimulus>(0.25, 0.2, 4002));
    comp->route("g1", std::make_unique<ControlledBitStimulus>(0.5, 0.3, 4003));
    comp->route("g2", std::make_unique<ControlledBitStimulus>(0.5, 0.3, 4004));
    return comp;
  };
}

void report(const char* label, const opiso::IsolationResult& res) {
  std::printf("  %-34s power %7.3f mW (-%5.2f%%)  area +%5.2f%%  isolated %zu  iters %zu\n",
              label, res.power_after_mw, res.power_reduction_pct(), res.area_increase_pct(),
              res.records.size(), res.iterations.size());
}

}  // namespace

int main() {
  using namespace opiso;
  const Netlist design = make_design1(8);

  std::printf("Ablation — design1\n\n");

  std::printf("[1] primary-savings model\n");
  for (PrimaryModel model : {PrimaryModel::Simple, PrimaryModel::Refined}) {
    IsolationOptions opt;
    opt.sim_cycles = 8192;
    opt.primary_model = model;
    report(model == PrimaryModel::Simple ? "Eq.-1 simple" : "Eq.-3 refined (event pairs)",
           run_operand_isolation(design, stimuli(), opt));
  }

  std::printf("\n[2] cost weights omega_a (omega_p = 1)\n");
  for (double wa : {0.0, 0.05, 0.5, 2.0, 10.0}) {
    IsolationOptions opt;
    opt.sim_cycles = 8192;
    opt.omega_a = wa;
    char label[64];
    std::snprintf(label, sizeof label, "omega_a = %.2f", wa);
    report(label, run_operand_isolation(design, stimuli(), opt));
  }

  std::printf("\n[3] acceptance threshold h_min\n");
  for (double hmin : {-1.0, 0.0, 0.002, 0.01, 0.05}) {
    IsolationOptions opt;
    opt.sim_cycles = 8192;
    opt.h_min = hmin;
    char label[64];
    std::snprintf(label, sizeof label, "h_min = %.3f", hmin);
    report(label, run_operand_isolation(design, stimuli(), opt));
  }

  std::printf("\n[4] slack threshold (candidate veto)\n");
  for (double thr : {0.0, 10.0, 15.0, 18.0}) {
    IsolationOptions opt;
    opt.sim_cycles = 8192;
    opt.slack_threshold_ns = thr;
    char label[64];
    std::snprintf(label, sizeof label, "slack threshold = %.1f ns", thr);
    report(label, run_operand_isolation(design, stimuli(), opt));
  }

  std::printf("\n[5] register lookahead (Sec. 3 extension) — pipeline with registered selects\n");
  {
    // Adder/multiplier feeding always-enabled registers whose values
    // are consumed under *registered* selects: the f+_r = 1 cut derives
    // f = 1 (nothing to isolate); structural lookahead recovers it.
    Netlist pipe("lookahead_pipe");
    const NetId a = pipe.add_input("a", 8);
    const NetId b = pipe.add_input("b", 8);
    const NetId alt = pipe.add_input("alt", 8);
    const NetId alt2 = pipe.add_input("alt2", 16);
    const NetId sel_d = pipe.add_input("sel_d", 1);
    const NetId one = pipe.add_const("one", 1, 1);
    const NetId sum = pipe.add_binop(CellKind::Add, "sum", a, b);
    const NetId prod = pipe.add_binop(CellKind::Mul, "prod", a, b);
    const NetId r0 = pipe.add_reg("r0", sum, one);
    const NetId rp = pipe.add_reg("rp", prod, one);
    const NetId sel_q = pipe.add_reg("sel_q", sel_d, one);
    const NetId ralt = pipe.add_reg("ralt", alt, one);
    const NetId ralt2 = pipe.add_reg("ralt2", alt2, one);
    const NetId m = pipe.add_mux2("m", sel_q, ralt, r0);
    const NetId m2 = pipe.add_mux2("m2", sel_q, rp, ralt2);
    const NetId sum2 = pipe.add_binop(CellKind::Add, "sum2", m, m2);
    const NetId r_out = pipe.add_reg("r_out", sum2, one);
    pipe.add_output("out", r_out);

    const StimulusFactory pipe_stim = [] {
      auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(4005));
      comp->route("sel_d", std::make_unique<ControlledBitStimulus>(0.15, 0.1, 4006));
      return comp;
    };
    for (bool lookahead : {false, true}) {
      IsolationOptions opt;
      opt.sim_cycles = 8192;
      opt.activation.register_lookahead = lookahead;
      report(lookahead ? "with lookahead" : "f+_r = 1 cut (paper default)",
             run_operand_isolation(pipe, pipe_stim, opt));
    }
  }

  std::printf("\n[6] FSM-reachability don't-cares + per-candidate style — design2\n");
  {
    const Netlist d2 = make_design2(8, 2);
    const StimulusFactory d2_stim = [] { return std::make_unique<UniformStimulus>(4007); };
    for (int mode = 0; mode < 3; ++mode) {
      IsolationOptions opt;
      opt.sim_cycles = 8192;
      opt.use_reachability_dont_cares = (mode >= 1);
      opt.choose_style_per_candidate = (mode == 2);
      const IsolationResult res = run_operand_isolation(d2, d2_stim, opt);
      std::size_t literals = 0;
      for (const IsolationRecord& rec : res.records) literals += rec.literal_count;
      char label[72];
      std::snprintf(label, sizeof label, "%s (%zu AS literals)",
                    mode == 0   ? "baseline"
                    : mode == 1 ? "+ reachability don't-cares"
                                : "+ don't-cares + mixed style",
                    literals);
      report(label, res);
    }
  }

  std::printf(
      "\nExpected shapes: refined model ranks like simple on this design;"
      "\nrising omega_a / h_min / slack-threshold monotonically prune isolations;"
      "\nlookahead isolates modules the f+_r = 1 cut must leave alone;"
      "\nreachability don't-cares never grow the activation logic.\n");
  return 0;
}
