// Complexity benchmark (google-benchmark): Sec. 3 claims the activation
// functions of all modules are derived in O(|V|+|E|) by one backward
// breadth-first pass. We grow the parametric datapath and time
// derivation, candidate identification, STA and one simulated cycle
// batch; derivation time per cell should stay ~flat.

#include <benchmark/benchmark.h>

#include "designs/designs.hpp"
#include "isolation/algorithm.hpp"
#include "netlist/traversal.hpp"
#include "timing/sta.hpp"

namespace {

using namespace opiso;

Netlist design_of_size(int lanes) {
  return make_parametric_datapath({static_cast<unsigned>(lanes), 4, 8, true});
}

void BM_DeriveActivation(benchmark::State& state) {
  const Netlist nl = design_of_size(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ExprPool pool;
    NetVarMap vars;
    const ActivationAnalysis aa = derive_activation(nl, pool, vars);
    benchmark::DoNotOptimize(aa.obs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nl.num_cells()));
  state.counters["cells"] = static_cast<double>(nl.num_cells());
}
BENCHMARK(BM_DeriveActivation)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_IdentifyCandidates(benchmark::State& state) {
  const Netlist nl = design_of_size(static_cast<int>(state.range(0)));
  ExprPool pool;
  NetVarMap vars;
  const ActivationAnalysis aa = derive_activation(nl, pool, vars);
  const auto blocks = combinational_blocks(nl);
  for (auto _ : state) {
    auto cands = identify_candidates(nl, blocks, aa, pool, CandidateConfig{});
    benchmark::DoNotOptimize(cands.data());
  }
}
BENCHMARK(BM_IdentifyCandidates)->Arg(4)->Arg(16)->Arg(64);

void BM_Sta(benchmark::State& state) {
  const Netlist nl = design_of_size(static_cast<int>(state.range(0)));
  const DelayModel dm;
  for (auto _ : state) {
    const TimingReport rep = run_sta(nl, dm);
    benchmark::DoNotOptimize(rep.worst_slack);
  }
}
BENCHMARK(BM_Sta)->Arg(4)->Arg(16)->Arg(64);

void BM_Simulate1k(benchmark::State& state) {
  const Netlist nl = design_of_size(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Simulator sim(nl);
    UniformStimulus stim(7);
    sim.run(stim, 1000);
    benchmark::DoNotOptimize(sim.stats().cycles);
  }
  state.counters["cells"] = static_cast<double>(nl.num_cells());
}
BENCHMARK(BM_Simulate1k)->Arg(1)->Arg(4)->Arg(16);

void BM_FullIsolationFlow(benchmark::State& state) {
  const Netlist nl = design_of_size(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    IsolationOptions opt;
    opt.sim_cycles = 512;
    const IsolationResult res = run_operand_isolation(
        nl, [] { return std::make_unique<UniformStimulus>(11); }, opt);
    benchmark::DoNotOptimize(res.power_after_mw);
  }
}
BENCHMARK(BM_FullIsolationFlow)->Arg(1)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
