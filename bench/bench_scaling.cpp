// Complexity benchmark (google-benchmark): Sec. 3 claims the activation
// functions of all modules are derived in O(|V|+|E|) by one backward
// breadth-first pass. We grow the parametric datapath and time
// derivation, candidate identification, STA and one simulated cycle
// batch; derivation time per cell should stay ~flat.
//
// The BM_*Simulate* and BM_Sweep* groups compare simulation throughput:
// scalar engine vs the 64-lane bit-parallel engine vs the threaded
// sweep runner. items_per_second is lane-cycles/sec everywhere, so the
// ratios read directly as speedups over BM_ScalarSimulate.

#include <benchmark/benchmark.h>

#include "designs/designs.hpp"
#include "isolation/algorithm.hpp"
#include "netlist/traversal.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/sweep.hpp"
#include "timing/sta.hpp"

namespace {

using namespace opiso;

Netlist design_of_size(int lanes) {
  return make_parametric_datapath({static_cast<unsigned>(lanes), 4, 8, true});
}

void BM_DeriveActivation(benchmark::State& state) {
  const Netlist nl = design_of_size(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ExprPool pool;
    NetVarMap vars;
    const ActivationAnalysis aa = derive_activation(nl, pool, vars);
    benchmark::DoNotOptimize(aa.obs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nl.num_cells()));
  state.counters["cells"] = static_cast<double>(nl.num_cells());
}
BENCHMARK(BM_DeriveActivation)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_IdentifyCandidates(benchmark::State& state) {
  const Netlist nl = design_of_size(static_cast<int>(state.range(0)));
  ExprPool pool;
  NetVarMap vars;
  const ActivationAnalysis aa = derive_activation(nl, pool, vars);
  const auto blocks = combinational_blocks(nl);
  for (auto _ : state) {
    auto cands = identify_candidates(nl, blocks, aa, pool, CandidateConfig{});
    benchmark::DoNotOptimize(cands.data());
  }
}
BENCHMARK(BM_IdentifyCandidates)->Arg(4)->Arg(16)->Arg(64);

void BM_Sta(benchmark::State& state) {
  const Netlist nl = design_of_size(static_cast<int>(state.range(0)));
  const DelayModel dm;
  for (auto _ : state) {
    const TimingReport rep = run_sta(nl, dm);
    benchmark::DoNotOptimize(rep.worst_slack);
  }
}
BENCHMARK(BM_Sta)->Arg(4)->Arg(16)->Arg(64);

void BM_Simulate1k(benchmark::State& state) {
  const Netlist nl = design_of_size(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Simulator sim(nl);
    UniformStimulus stim(7);
    sim.run(stim, 1000);
    benchmark::DoNotOptimize(sim.stats().cycles);
  }
  state.counters["cells"] = static_cast<double>(nl.num_cells());
}
BENCHMARK(BM_Simulate1k)->Arg(1)->Arg(4)->Arg(16);

// --- engine comparison: identical workload (design2, uniform stimuli,
// lane-seeded streams), lane-cycles/sec as the common unit.

void BM_ScalarSimulate(benchmark::State& state) {
  const Netlist nl = make_design2();
  std::uint64_t lane_cycles = 0;
  for (auto _ : state) {
    Simulator sim(nl);
    UniformStimulus stim(sweep_lane_seed(1, 0));
    sim.run(stim, 4096);
    benchmark::DoNotOptimize(sim.stats().cycles);
    lane_cycles += 4096;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(lane_cycles));
}
BENCHMARK(BM_ScalarSimulate);

void BM_ParallelSimulate(benchmark::State& state) {
  const Netlist nl = make_design2();
  const auto lanes = static_cast<unsigned>(state.range(0));
  std::uint64_t lane_cycles = 0;
  for (auto _ : state) {
    ParallelSimulator sim(nl, lanes);
    sim.set_stimulus([](unsigned lane) {
      return std::make_unique<UniformStimulus>(sweep_lane_seed(1, lane));
    });
    sim.run(4096 / lanes);
    benchmark::DoNotOptimize(sim.stats().cycles);
    lane_cycles += (4096 / lanes) * lanes;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(lane_cycles));
}
BENCHMARK(BM_ParallelSimulate)->Arg(8)->Arg(64);

// Thread scaling of the sweep runner: 16 independent (seed) tasks on
// the 64-lane engine. At 8 threads on a multicore host this is where
// the >=10x total throughput over BM_ScalarSimulate comes from; on a
// single hardware thread the engine alone contributes its ~3-6x.
void BM_SweepThreads(benchmark::State& state) {
  std::vector<SweepTask> tasks;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    SweepTask t;
    t.design = "design2";
    t.make_design = [] { return make_design2(); };
    t.seed = seed;
    t.cycles = 1024;
    tasks.push_back(t);
  }
  SweepRunner runner(static_cast<unsigned>(state.range(0)));
  std::uint64_t lane_cycles = 0;
  for (auto _ : state) {
    const std::vector<SweepResult> results = runner.run(tasks);
    benchmark::DoNotOptimize(results.data());
    for (const SweepResult& r : results) lane_cycles += r.lane_cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(lane_cycles));
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SweepThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_FullIsolationFlow(benchmark::State& state) {
  const Netlist nl = design_of_size(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    IsolationOptions opt;
    opt.sim_cycles = 512;
    const IsolationResult res = run_operand_isolation(
        nl, [] { return std::make_unique<UniformStimulus>(11); }, opt);
    benchmark::DoNotOptimize(res.power_after_mw);
  }
}
BENCHMARK(BM_FullIsolationFlow)->Arg(1)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
